//! Properties of the canonicalizer: the structural hash is invariant under
//! alpha-renaming (the whole point — `f(x){y:=x+1}` and `f(a){b:=a+1}` must
//! key the same plan-cache slot) and sensitive to semantic differences
//! (constants, operators), so distinct programs do not collide by design.

use proptest::prelude::*;
use udf_lang::ast::{BoolExpr, CmpOp, IntExpr, IntOp, ProgId, Program, Stmt};
use udf_lang::canon::program_hash;
use udf_lang::intern::Interner;

#[derive(Clone, Debug)]
enum GTerm {
    Const(i16),
    Var(u8),
    Call(u8, Vec<GTerm>),
    Bin(u8, Box<GTerm>, Box<GTerm>),
}

#[derive(Clone, Debug)]
enum GBool {
    Const(bool),
    Cmp(u8, GTerm, GTerm),
    Not(Box<GBool>),
}

#[derive(Clone, Debug)]
enum GStmt {
    Skip,
    Assign(u8, GTerm),
    If(GBool, Vec<GStmt>, Vec<GStmt>),
    While(GBool, Vec<GStmt>),
    Notify(u8, bool),
}

fn gterm() -> impl Strategy<Value = GTerm> {
    let leaf = prop_oneof![
        any::<i16>().prop_map(GTerm::Const),
        (0u8..6).prop_map(GTerm::Var),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            (0u8..2, prop::collection::vec(inner.clone(), 0..3))
                .prop_map(|(f, args)| GTerm::Call(f, args)),
            (0u8..3, inner.clone(), inner)
                .prop_map(|(op, a, b)| GTerm::Bin(op, Box::new(a), Box::new(b))),
        ]
    })
}

fn gbool() -> impl Strategy<Value = GBool> {
    let atom = prop_oneof![
        any::<bool>().prop_map(GBool::Const),
        (0u8..3, gterm(), gterm()).prop_map(|(op, a, b)| GBool::Cmp(op, a, b)),
    ];
    atom.prop_recursive(2, 8, 2, |inner| {
        inner.prop_map(|b| GBool::Not(Box::new(b)))
    })
}

fn gstmt(depth: u32) -> BoxedStrategy<GStmt> {
    if depth == 0 {
        prop_oneof![
            Just(GStmt::Skip),
            (0u8..6, gterm()).prop_map(|(x, t)| GStmt::Assign(x, t)),
            (0u8..4, any::<bool>()).prop_map(|(id, b)| GStmt::Notify(id, b)),
        ]
        .boxed()
    } else {
        prop_oneof![
            2 => (0u8..6, gterm()).prop_map(|(x, t)| GStmt::Assign(x, t)),
            1 => (
                gbool(),
                prop::collection::vec(gstmt(depth - 1), 0..3),
                prop::collection::vec(gstmt(depth - 1), 0..3)
            )
                .prop_map(|(c, a, b)| GStmt::If(c, a, b)),
            1 => (gbool(), prop::collection::vec(gstmt(depth - 1), 0..2))
                .prop_map(|(c, body)| GStmt::While(c, body)),
        ]
        .boxed()
    }
}

/// Elaborates generated statements into a `Program`, naming the two params
/// and four locals `{prefix}0..5` — two different prefixes give two
/// alpha-equivalent renamings of the same program. Function names are
/// semantic (they denote external library calls), so they stay fixed.
struct Builder {
    vars: Vec<udf_lang::intern::Symbol>,
    fns: Vec<udf_lang::intern::Symbol>,
}

impl Builder {
    fn term(&self, t: &GTerm) -> IntExpr {
        match t {
            GTerm::Const(c) => IntExpr::Const(i64::from(*c)),
            GTerm::Var(v) => IntExpr::Var(self.vars[*v as usize % self.vars.len()]),
            GTerm::Call(f, args) => IntExpr::Call(
                self.fns[*f as usize % self.fns.len()],
                args.iter().map(|a| self.term(a)).collect(),
            ),
            GTerm::Bin(op, a, b) => IntExpr::Bin(
                match op % 3 {
                    0 => IntOp::Add,
                    1 => IntOp::Sub,
                    _ => IntOp::Mul,
                },
                Box::new(self.term(a)),
                Box::new(self.term(b)),
            ),
        }
    }

    fn boolean(&self, e: &GBool) -> BoolExpr {
        match e {
            GBool::Const(b) => BoolExpr::Const(*b),
            GBool::Cmp(op, a, b) => BoolExpr::Cmp(
                match op % 3 {
                    0 => CmpOp::Lt,
                    1 => CmpOp::Le,
                    _ => CmpOp::Eq,
                },
                self.term(a),
                self.term(b),
            ),
            GBool::Not(a) => BoolExpr::not(self.boolean(a)),
        }
    }

    fn stmt(&self, s: &GStmt) -> Stmt {
        match s {
            GStmt::Skip => Stmt::Skip,
            GStmt::Assign(x, t) => {
                Stmt::Assign(self.vars[*x as usize % self.vars.len()], self.term(t))
            }
            GStmt::If(c, a, b) => Stmt::ite(
                self.boolean(c),
                Stmt::seq_all(a.iter().map(|s| self.stmt(s))),
                Stmt::seq_all(b.iter().map(|s| self.stmt(s))),
            ),
            GStmt::While(c, body) => Stmt::while_do(
                self.boolean(c),
                Stmt::seq_all(body.iter().map(|s| self.stmt(s))),
            ),
            GStmt::Notify(id, b) => Stmt::Notify(ProgId(u32::from(*id)), *b),
        }
    }
}

fn elaborate(stmts: &[GStmt], prefix: &str, interner: &mut Interner) -> Program {
    let builder = Builder {
        vars: (0..6)
            .map(|k| interner.intern(&format!("{prefix}{k}")))
            .collect(),
        fns: (0..2).map(|k| interner.intern(&format!("fn{k}"))).collect(),
    };
    // Seed every slot with a constant so each variable occurs at least once
    // and mutation always has a constant to perturb.
    let mut body: Vec<Stmt> = builder
        .vars
        .iter()
        .enumerate()
        .map(|(k, &v)| Stmt::Assign(v, IntExpr::Const(k as i64)))
        .collect();
    body.extend(stmts.iter().map(|s| builder.stmt(s)));
    Program::new(
        ProgId(9),
        vec![builder.vars[0], builder.vars[1]],
        Stmt::seq_all(body),
    )
}

/// Adds 1 to the first integer constant reachable in evaluation order.
/// Returns true if a constant was found (elaborate guarantees one).
fn bump_first_const(s: &mut Stmt) -> bool {
    fn in_term(t: &mut IntExpr) -> bool {
        match t {
            IntExpr::Const(c) => {
                *c += 1;
                true
            }
            IntExpr::Var(_) => false,
            IntExpr::Call(_, args) => args.iter_mut().any(in_term),
            IntExpr::Bin(_, a, b) => in_term(a) || in_term(b),
        }
    }
    fn in_bool(e: &mut BoolExpr) -> bool {
        match e {
            BoolExpr::Const(_) => false,
            BoolExpr::Cmp(_, a, b) => in_term(a) || in_term(b),
            BoolExpr::Not(a) => in_bool(a),
            BoolExpr::Bin(_, a, b) => in_bool(a) || in_bool(b),
        }
    }
    match s {
        Stmt::Skip | Stmt::Notify(..) => false,
        Stmt::Assign(_, t) => in_term(t),
        Stmt::Seq(a, b) => bump_first_const(a) || bump_first_const(b),
        Stmt::If(c, a, b) => in_bool(c) || bump_first_const(a) || bump_first_const(b),
        Stmt::While(c, body) => in_bool(c) || bump_first_const(body),
    }
}

/// Flips the first arithmetic operator found (Add <-> Sub, Mul -> Add).
fn flip_first_op(s: &mut Stmt) -> bool {
    fn in_term(t: &mut IntExpr) -> bool {
        match t {
            IntExpr::Const(_) | IntExpr::Var(_) => false,
            IntExpr::Call(_, args) => args.iter_mut().any(in_term),
            IntExpr::Bin(op, a, b) => {
                *op = match op {
                    IntOp::Add => IntOp::Sub,
                    IntOp::Sub | IntOp::Mul => IntOp::Add,
                };
                let _ = (a, b);
                true
            }
        }
    }
    fn in_bool(e: &mut BoolExpr) -> bool {
        match e {
            BoolExpr::Const(_) => false,
            BoolExpr::Cmp(_, a, b) => in_term(a) || in_term(b),
            BoolExpr::Not(a) => in_bool(a),
            BoolExpr::Bin(_, a, b) => in_bool(a) || in_bool(b),
        }
    }
    match s {
        Stmt::Skip | Stmt::Notify(..) => false,
        Stmt::Assign(_, t) => in_term(t),
        Stmt::Seq(a, b) => flip_first_op(a) || flip_first_op(b),
        Stmt::If(c, a, b) => in_bool(c) || flip_first_op(a) || flip_first_op(b),
        Stmt::While(c, body) => in_bool(c) || flip_first_op(body),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Renaming every parameter and local (here: prefix `v` vs `water`)
    /// never changes the canonical hash.
    #[test]
    fn alpha_equivalent_renamings_hash_identically(
        stmts in prop::collection::vec(gstmt(2), 0..6),
    ) {
        let mut interner = Interner::new();
        let a = elaborate(&stmts, "v", &mut interner);
        let b = elaborate(&stmts, "water", &mut interner);
        prop_assert_eq!(program_hash(&a, &interner), program_hash(&b, &interner));
    }

    /// Perturbing one constant changes the hash even across an
    /// alpha-renaming — renamed-and-mutated must not collide with the
    /// original.
    #[test]
    fn constant_difference_changes_the_hash(
        stmts in prop::collection::vec(gstmt(2), 0..6),
    ) {
        let mut interner = Interner::new();
        let a = elaborate(&stmts, "v", &mut interner);
        let mut b = elaborate(&stmts, "water", &mut interner);
        prop_assert!(bump_first_const(&mut b.body), "elaborate seeds constants");
        prop_assert_ne!(program_hash(&a, &interner), program_hash(&b, &interner));
    }

    /// Swapping one arithmetic operator changes the hash (when the program
    /// contains one at all).
    #[test]
    fn operator_difference_changes_the_hash(
        stmts in prop::collection::vec(gstmt(2), 1..6),
    ) {
        let mut interner = Interner::new();
        let a = elaborate(&stmts, "v", &mut interner);
        let mut b = elaborate(&stmts, "water", &mut interner);
        if flip_first_op(&mut b.body) {
            prop_assert_ne!(program_hash(&a, &interner), program_hash(&b, &interner));
        }
    }
}
