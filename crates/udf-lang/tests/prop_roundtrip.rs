//! Property: the pretty-printer and parser are mutually inverse on random
//! well-formed programs, and the interpreter is deterministic.

use proptest::prelude::*;
use udf_lang::ast::{BoolExpr, CmpOp, IntExpr, IntOp, ProgId, Program, Stmt};
use udf_lang::cost::CostModel;
use udf_lang::intern::Interner;
use udf_lang::interp::Interp;
use udf_lang::parse::parse_program;
use udf_lang::pretty;

#[derive(Clone, Debug)]
enum GTerm {
    Const(i16),
    Var(u8),
    Call(u8, Vec<GTerm>),
    Bin(u8, Box<GTerm>, Box<GTerm>),
}

#[derive(Clone, Debug)]
enum GBool {
    Const(bool),
    Cmp(u8, GTerm, GTerm),
    Not(Box<GBool>),
    Bin(u8, Box<GBool>, Box<GBool>),
}

#[derive(Clone, Debug)]
enum GStmt {
    Skip,
    Assign(u8, GTerm),
    If(GBool, Vec<GStmt>, Vec<GStmt>),
    BoundedLoop(u8, GTerm, Vec<GStmt>), // k := e; while (k > 0) { body; k := k − 1 }
    Notify(u8, bool),
}

fn gterm() -> impl Strategy<Value = GTerm> {
    let leaf = prop_oneof![
        any::<i16>().prop_map(GTerm::Const),
        (0u8..6).prop_map(GTerm::Var),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            (0u8..2, prop::collection::vec(inner.clone(), 0..3))
                .prop_map(|(f, args)| GTerm::Call(f, args)),
            (0u8..3, inner.clone(), inner)
                .prop_map(|(op, a, b)| GTerm::Bin(op, Box::new(a), Box::new(b))),
        ]
    })
}

fn gbool() -> impl Strategy<Value = GBool> {
    let atom = prop_oneof![
        any::<bool>().prop_map(GBool::Const),
        (0u8..3, gterm(), gterm()).prop_map(|(op, a, b)| GBool::Cmp(op, a, b)),
    ];
    atom.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|b| GBool::Not(Box::new(b))),
            (0u8..2, inner.clone(), inner)
                .prop_map(|(op, a, b)| GBool::Bin(op, Box::new(a), Box::new(b))),
        ]
    })
}

fn gstmt(depth: u32) -> BoxedStrategy<GStmt> {
    if depth == 0 {
        prop_oneof![
            Just(GStmt::Skip),
            (0u8..6, gterm()).prop_map(|(x, t)| GStmt::Assign(x, t)),
            (0u8..4, any::<bool>()).prop_map(|(id, b)| GStmt::Notify(id, b)),
        ]
        .boxed()
    } else {
        prop_oneof![
            2 => (0u8..6, gterm()).prop_map(|(x, t)| GStmt::Assign(x, t)),
            1 => (
                gbool(),
                prop::collection::vec(gstmt(depth - 1), 0..3),
                prop::collection::vec(gstmt(depth - 1), 0..3)
            )
                .prop_map(|(c, a, b)| GStmt::If(c, a, b)),
            1 => (5u8..6, gterm(), prop::collection::vec(gstmt(depth - 1), 0..2))
                .prop_map(|(k, e, body)| GStmt::BoundedLoop(k, e, body)),
        ]
        .boxed()
    }
}

struct Builder {
    vars: Vec<udf_lang::intern::Symbol>,
    fns: Vec<udf_lang::intern::Symbol>,
}

impl Builder {
    fn term(&self, t: &GTerm) -> IntExpr {
        match t {
            GTerm::Const(c) => IntExpr::Const(i64::from(*c)),
            GTerm::Var(v) => IntExpr::Var(self.vars[*v as usize % self.vars.len()]),
            GTerm::Call(f, args) => IntExpr::Call(
                self.fns[*f as usize % self.fns.len()],
                args.iter().map(|a| self.term(a)).collect(),
            ),
            GTerm::Bin(op, a, b) => IntExpr::Bin(
                match op % 3 {
                    0 => IntOp::Add,
                    1 => IntOp::Sub,
                    _ => IntOp::Mul,
                },
                Box::new(self.term(a)),
                Box::new(self.term(b)),
            ),
        }
    }

    fn boolean(&self, e: &GBool) -> BoolExpr {
        match e {
            GBool::Const(b) => BoolExpr::Const(*b),
            GBool::Cmp(op, a, b) => BoolExpr::Cmp(
                match op % 3 {
                    0 => CmpOp::Lt,
                    1 => CmpOp::Le,
                    _ => CmpOp::Eq,
                },
                self.term(a),
                self.term(b),
            ),
            GBool::Not(a) => BoolExpr::not(self.boolean(a)),
            GBool::Bin(op, a, b) => {
                if op % 2 == 0 {
                    BoolExpr::and(self.boolean(a), self.boolean(b))
                } else {
                    BoolExpr::or(self.boolean(a), self.boolean(b))
                }
            }
        }
    }

    fn stmt(&self, s: &GStmt) -> Stmt {
        match s {
            GStmt::Skip => Stmt::Skip,
            GStmt::Assign(x, t) => {
                Stmt::Assign(self.vars[*x as usize % self.vars.len()], self.term(t))
            }
            GStmt::If(c, a, b) => Stmt::ite(
                self.boolean(c),
                Stmt::seq_all(a.iter().map(|s| self.stmt(s))),
                Stmt::seq_all(b.iter().map(|s| self.stmt(s))),
            ),
            GStmt::BoundedLoop(k, e, body) => {
                let kv = self.vars[*k as usize % self.vars.len()];
                // k := min(e, 7) via: k := e; if (k > 7) { k := 7 }
                let init = Stmt::Assign(kv, self.term(e));
                let clamp = Stmt::ite(
                    BoolExpr::Cmp(CmpOp::Lt, IntExpr::Const(7), IntExpr::Var(kv)),
                    Stmt::Assign(kv, IntExpr::Const(7)),
                    Stmt::Skip,
                );
                let dec = Stmt::Assign(kv, IntExpr::sub(IntExpr::Var(kv), IntExpr::Const(1)));
                let body = Stmt::seq_all(body.iter().map(|s| self.stmt(s)).chain([dec]));
                init.then(clamp).then(Stmt::while_do(
                    BoolExpr::Cmp(CmpOp::Lt, IntExpr::Const(0), IntExpr::Var(kv)),
                    body,
                ))
            }
            GStmt::Notify(id, b) => Stmt::Notify(ProgId(u32::from(*id)), *b),
        }
    }
}

fn elaborate(stmts: &[GStmt], interner: &mut Interner) -> Program {
    let builder = Builder {
        vars: (0..6).map(|k| interner.intern(&format!("v{k}"))).collect(),
        fns: (0..2).map(|k| interner.intern(&format!("fn{k}"))).collect(),
    };
    // Initialize all variables so programs are runnable.
    let mut body: Vec<Stmt> = builder
        .vars
        .iter()
        .enumerate()
        .map(|(k, &v)| Stmt::Assign(v, IntExpr::Const(k as i64)))
        .collect();
    body.extend(stmts.iter().map(|s| builder.stmt(s)));
    Program::new(
        ProgId(9),
        vec![interner.intern("alpha")],
        Stmt::seq_all(body),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// parse(print(p)) reproduces the program up to `Seq` re-association
    /// (the printer flattens sequences, so comparing the second print
    /// detects any real divergence).
    #[test]
    fn print_parse_round_trip(stmts in prop::collection::vec(gstmt(2), 0..6)) {
        let mut interner = Interner::new();
        let p = elaborate(&stmts, &mut interner);
        let printed = pretty::program(&p, &interner);
        let reparsed = parse_program(&printed, &mut interner)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        let reprinted = pretty::program(&reparsed, &interner);
        prop_assert_eq!(&printed, &reprinted);
        prop_assert_eq!(p.id, reparsed.id);
    }

    /// Duplicate runs of the interpreter agree bit-for-bit (determinism —
    /// a prerequisite the paper imposes on UDFs).
    #[test]
    fn interpreter_is_deterministic(
        stmts in prop::collection::vec(gstmt(2), 0..6),
        arg in -100i64..100,
    ) {
        let mut interner = Interner::new();
        let p = elaborate(&stmts, &mut interner);
        // A permissive library: any function, any arity (the generator may
        // call the same symbol at several arities).
        struct AnyLib;
        impl udf_lang::library::Library for AnyLib {
            fn call(
                &self,
                f: udf_lang::intern::Symbol,
                args: &[i64],
            ) -> Result<i64, udf_lang::library::LibError> {
                let mut acc = f.index() as i64;
                for (i, a) in args.iter().enumerate() {
                    acc = acc
                        .wrapping_mul(31)
                        .wrapping_add(a.wrapping_mul(i as i64 + 1));
                }
                Ok(acc)
            }
            fn cost(&self, _f: udf_lang::intern::Symbol) -> u64 {
                10
            }
        }
        let interp = Interp::new(CostModel::default(), &AnyLib).with_fuel(2_000_000);
        let a = interp.run(&p, &[arg], &interner);
        let b = interp.run(&p, &[arg], &interner);
        prop_assert_eq!(a, b);
    }
}
