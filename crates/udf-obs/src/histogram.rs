//! Log₂-bucketed histograms with atomic recording.
//!
//! Values are `u64` samples (typically latencies in nanoseconds). Bucket `0`
//! holds exactly the value `0`; bucket `k ≥ 1` holds the half-open power-of-two
//! range `[2^(k−1), 2^k − 1]`, so 65 buckets cover the full `u64` domain. The
//! mapping is a single `leading_zeros` instruction and recording is a handful
//! of relaxed atomic adds — cheap enough to leave enabled on hot paths.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one for `0` plus one per power-of-two range of `u64`.
pub const BUCKETS: usize = 65;

/// Maps a sample to its bucket index: `0 → 0`, otherwise `64 − leading_zeros`.
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros()) as usize
    }
}

/// Inclusive `(low, high)` bounds of bucket `i`.
///
/// Bucket `0` is `(0, 0)`; bucket `k ≥ 1` is `(2^(k−1), 2^k − 1)` with the
/// final bucket capped at `u64::MAX`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < BUCKETS, "bucket index {i} out of range");
    if i == 0 {
        (0, 0)
    } else if i == BUCKETS - 1 {
        (1u64 << (i - 1), u64::MAX)
    } else {
        (1u64 << (i - 1), (1u64 << i) - 1)
    }
}

/// A concurrent log₂ histogram. All updates are relaxed atomics; snapshots
/// are *not* linearizable across buckets (a snapshot taken mid-record may see
/// the bucket increment but not yet the sum), which is fine for metrics.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    /// Minimum recorded value; `u64::MAX` while empty.
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// A point-in-time copy of the histogram state (sparse: empty buckets are
    /// omitted).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((i as u8, n))
            })
            .collect();
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Immutable copy of a [`Histogram`], suitable for reports and JSON dumps.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total number of recorded samples.
    pub count: u64,
    /// Sum of all samples (wraps only after `u64` overflow).
    pub sum: u64,
    /// Smallest recorded sample (`0` when empty).
    pub min: u64,
    /// Largest recorded sample (`0` when empty).
    pub max: u64,
    /// Sparse `(bucket index, sample count)` pairs, ascending by index.
    pub buckets: Vec<(u8, u64)>,
}

impl HistogramSnapshot {
    /// Mean sample value, or `None` when empty.
    pub fn mean(&self) -> Option<u64> {
        (self.count > 0).then(|| self.sum / self.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_goes_to_bucket_zero() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bounds_are_monotone_and_adjacent() {
        let mut prev_high: Option<u64> = None;
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= hi, "bucket {i} inverted");
            if let Some(p) = prev_high {
                assert_eq!(lo, p + 1, "gap/overlap before bucket {i}");
            }
            prev_high = Some(hi);
        }
        assert_eq!(prev_high, Some(u64::MAX));
    }

    #[test]
    fn index_lands_inside_bounds() {
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, 1 << 40, u64::MAX] {
            let i = bucket_index(v);
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v <= hi, "{v} not in bucket {i} [{lo},{hi}]");
        }
    }

    #[test]
    fn record_and_snapshot() {
        let h = Histogram::new();
        for v in [0u64, 1, 1, 5, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1007);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1000);
        assert_eq!(s.mean(), Some(201));
        let total: u64 = s.buckets.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn empty_snapshot_is_default() {
        assert_eq!(Histogram::new().snapshot(), HistogramSnapshot::default());
    }
}
