//! Dependency-free observability layer for the UDF-consolidation workspace.
//!
//! The paper's evaluation (Figures 9 and 10 of *Consolidation of Queries
//! with User-Defined Functions*, PLDI 2014) turns on *why* consolidation
//! wins: which rewrite rules fired, how many SMT entailment checks were
//! paid, where the solver spent its time. This crate is the measurement
//! substrate the rest of the workspace reports through:
//!
//! * [`Recorder`] — the pluggable sink trait. The default is
//!   [`NoopRecorder`] (drops everything, `enabled() == false`), so
//!   instrumented hot paths cost ~one predicted branch until a caller
//!   installs a [`MemoryRecorder`].
//! * [`RecorderCell`] — a cloneable `Arc<dyn Recorder>` handle that embeds
//!   in configuration structs (`consolidate::Options`, `udf_smt::Solver`,
//!   `naiad_lite::EngineConfig`) without breaking their derived
//!   `Clone`/`Debug`/`Default`.
//! * [`Histogram`] — 65-bucket log₂ latency histogram with atomic updates.
//! * [`SpanTimer`] — RAII timer that records elapsed nanoseconds into a
//!   histogram metric on drop.
//! * [`MetricsSnapshot`] — plain-data copy of all counters/histograms with
//!   a hand-rolled JSON codec (`to_json`/`from_json`; the build container
//!   is offline, so no serde).
//!
//! Metric names are centralized in [`names`]; `OBSERVABILITY.md` at the
//! workspace root documents every name, unit, and emission site.
//!
//! # Entry points
//!
//! ```
//! use udf_obs::{names, RecorderCell};
//!
//! let rec = RecorderCell::memory();        // or RecorderCell::noop()
//! rec.add(names::SMT_CHECKS, 1);           // counter
//! rec.observe(names::SMT_CHECK_NS, 1250);  // histogram sample
//! {
//!     let _span = rec.span(names::ENTAIL_NS); // records elapsed ns on drop
//! }
//! let snap = rec.snapshot().unwrap();
//! assert_eq!(snap.counter(names::SMT_CHECKS), 1);
//! let json = snap.to_json();               // machine-readable dump
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod histogram;
pub mod names;
pub mod recorder;
pub mod snapshot;

pub use histogram::{bucket_bounds, bucket_index, Histogram, HistogramSnapshot, BUCKETS};
pub use recorder::{MemoryRecorder, NoopRecorder, Recorder};
pub use snapshot::{JsonError, MetricsSnapshot};

use std::sync::Arc;
use std::time::Instant;

/// A cloneable handle to a [`Recorder`], designed to live inside
/// configuration structs.
///
/// `RecorderCell` implements `Clone` (shares the sink), `Debug` (does not
/// require the sink to be `Debug`), and `Default` (the no-op sink), so
/// structs like `consolidate::Options` keep their `#[derive(Clone, Debug)]`
/// after gaining a recorder field. Cloning a cell never forks the data:
/// every clone feeds the same underlying sink, which is what lets per-pair
/// solver clones and per-shard engine workers aggregate into one snapshot.
pub struct RecorderCell(Arc<dyn Recorder>);

impl RecorderCell {
    /// Wraps an arbitrary sink.
    pub fn new(recorder: Arc<dyn Recorder>) -> RecorderCell {
        RecorderCell(recorder)
    }

    /// The disabled default sink.
    pub fn noop() -> RecorderCell {
        RecorderCell(Arc::new(NoopRecorder))
    }

    /// A fresh in-memory sink (see [`MemoryRecorder`]).
    pub fn memory() -> RecorderCell {
        RecorderCell(Arc::new(MemoryRecorder::new()))
    }

    /// Whether the sink keeps data; use to skip collection-side work.
    pub fn enabled(&self) -> bool {
        self.0.enabled()
    }

    /// Increments counter `metric` by `delta`.
    pub fn add(&self, metric: &'static str, delta: u64) {
        self.0.add(metric, delta);
    }

    /// Records `value` into histogram `metric`.
    pub fn observe(&self, metric: &'static str, value: u64) {
        self.0.observe(metric, value);
    }

    /// A point-in-time copy of everything recorded (`None` for no-op sinks).
    pub fn snapshot(&self) -> Option<MetricsSnapshot> {
        self.0.snapshot()
    }

    /// Starts an RAII span: elapsed nanoseconds are recorded into histogram
    /// `metric` when the returned [`SpanTimer`] drops. When the sink is
    /// disabled the timer never reads the clock.
    pub fn span(&self, metric: &'static str) -> SpanTimer {
        SpanTimer {
            recorder: self.clone(),
            metric,
            start: self.enabled().then(Instant::now),
        }
    }
}

impl Clone for RecorderCell {
    fn clone(&self) -> RecorderCell {
        RecorderCell(Arc::clone(&self.0))
    }
}

impl Default for RecorderCell {
    fn default() -> RecorderCell {
        RecorderCell::noop()
    }
}

impl std::fmt::Debug for RecorderCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecorderCell")
            .field("enabled", &self.enabled())
            .finish()
    }
}

/// RAII timer: records elapsed nanoseconds into a histogram metric on drop.
///
/// Construct via [`RecorderCell::span`]. The clock is only read when the
/// sink is enabled, so spans are safe to leave on hot paths.
#[derive(Debug)]
pub struct SpanTimer {
    recorder: RecorderCell,
    metric: &'static str,
    start: Option<Instant>,
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.recorder.observe(self.metric, ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cell_is_disabled() {
        let cell = RecorderCell::default();
        assert!(!cell.enabled());
        cell.add(names::SMT_CHECKS, 1);
        assert!(cell.snapshot().is_none());
    }

    #[test]
    fn clones_share_one_sink() {
        let a = RecorderCell::memory();
        let b = a.clone();
        a.add(names::PAIRS, 1);
        b.add(names::PAIRS, 2);
        assert_eq!(a.snapshot().unwrap().counter(names::PAIRS), 3);
    }

    #[test]
    fn span_records_into_histogram() {
        let cell = RecorderCell::memory();
        {
            let _span = cell.span(names::SMT_CHECK_NS);
            std::hint::black_box(0u64);
        }
        let snap = cell.snapshot().unwrap();
        assert_eq!(snap.histogram(names::SMT_CHECK_NS).unwrap().count, 1);
    }

    #[test]
    fn noop_span_skips_the_clock() {
        let cell = RecorderCell::noop();
        let span = cell.span(names::SMT_CHECK_NS);
        assert!(span.start.is_none());
    }

    #[test]
    fn debug_does_not_require_sink_debug() {
        let cell = RecorderCell::memory();
        let text = format!("{cell:?}");
        assert!(text.contains("enabled: true"));
    }
}
