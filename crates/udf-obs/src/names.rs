//! The canonical registry of metric names emitted by the workspace.
//!
//! Every instrumented crate takes its metric names from here so that the
//! documented surface (`OBSERVABILITY.md`), the emission sites, and any
//! downstream consumer agree on spelling. Counters are dimensionless event
//! counts; histogram metrics end in a unit suffix (`_ns` = nanoseconds).

// ---- udf-smt: solver layer ------------------------------------------------

/// Counter: top-level solver satisfiability checks (`Solver::check*`).
pub const SMT_CHECKS: &str = "smt.checks";
/// Counter: theory final-checks over full propositional models.
pub const SMT_THEORY_CHECKS: &str = "smt.theory_checks";
/// Counter: theory conflicts that produced a blocking clause.
pub const SMT_THEORY_CONFLICTS: &str = "smt.theory_conflicts";
/// Counter: literals removed by greedy conflict minimization.
pub const SMT_MINIMIZED_LITERALS: &str = "smt.minimized_literals";
/// Counter: CDCL decisions across all SAT searches.
pub const SMT_SAT_DECISIONS: &str = "smt.sat.decisions";
/// Counter: CDCL conflicts across all SAT searches.
pub const SMT_SAT_CONFLICTS: &str = "smt.sat.conflicts";
/// Counter: unit propagations across all SAT searches.
pub const SMT_SAT_PROPAGATIONS: &str = "smt.sat.propagations";
/// Counter: simplex pivot operations (rational feasibility restoration),
/// summed over every branch-and-bound node and Nelson–Oppen probe.
pub const SMT_SIMPLEX_PIVOTS: &str = "smt.simplex.pivots";
/// Counter: Nelson–Oppen equality-exchange rounds executed.
pub const SMT_THEORY_ROUNDS: &str = "smt.theory.rounds";
/// Histogram (ns): wall-clock latency of one `Solver::check*` call.
pub const SMT_CHECK_NS: &str = "smt.check_ns";

// ---- consolidate: rule engine ---------------------------------------------

/// Counter: Com rule — operands commuted to expose a reducible head.
pub const RULE_COM: &str = "consolidate.rule.com";
/// Counter: Skip rule — a fully-consumed side dropped.
pub const RULE_SKIP: &str = "consolidate.rule.skip";
/// Counter: Assign rule — assignment absorbed into the context.
pub const RULE_ASSIGN: &str = "consolidate.rule.assign";
/// Counter: Step rule — a `notify` stepped over into the context.
pub const RULE_STEP: &str = "consolidate.rule.step";
/// Counter: Seq rule — a sequence head split off for consolidation.
pub const RULE_SEQ: &str = "consolidate.rule.seq";
/// Counter: If1 — conditional eliminated because the guard is implied true.
pub const RULE_IF1: &str = "consolidate.rule.if1";
/// Counter: If2 — conditional eliminated because the guard is implied false.
pub const RULE_IF2: &str = "consolidate.rule.if2";
/// Counter: If3 — both branches consolidated against the other program.
pub const RULE_IF3: &str = "consolidate.rule.if3";
/// Counter: If4 — other program embedded into the conditional's branches.
pub const RULE_IF4: &str = "consolidate.rule.if4";
/// Counter: If5 — conditional emitted as-is, consolidation continues after.
pub const RULE_IF5: &str = "consolidate.rule.if5";
/// Counter: Loop1 — a single remaining loop self-simplified against the
/// context.
pub const RULE_LOOP1: &str = "consolidate.rule.loop1";
/// Counter: Loop2 — loop pair fused (trip counts proved equal).
pub const RULE_LOOP2: &str = "consolidate.rule.loop2";
/// Counter: Loop3 — loop pair fused with residual loop (trip counts ordered).
pub const RULE_LOOP3: &str = "consolidate.rule.loop3";
/// Counter: loop pair emitted sequentially (fusion premises not proved).
pub const RULE_LOOP_SEQ: &str = "consolidate.rule.loop_seq";
/// Counter: recursion-depth cap hit; remainder emitted sequentially.
pub const RULE_DEPTH_FALLBACK: &str = "consolidate.rule.depth_fallback";
/// Counter: consolidation budget exhausted; remainder emitted sequentially.
pub const RULE_BUDGET_FALLBACK: &str = "consolidate.rule.budget_fallback";

/// Counter: entailment queries asked of the symbolic context (`Ψ ⊨ φ`).
pub const ENTAIL_QUERIES: &str = "consolidate.entail.queries";
/// Counter: entailment queries answered by the cross-pair memo.
pub const ENTAIL_MEMO_HITS: &str = "consolidate.entail.memo_hits";
/// Counter: entailment queries answered by the per-pair validity cache.
pub const ENTAIL_CACHE_HITS: &str = "consolidate.entail.cache_hits";
/// Histogram (ns): wall-clock latency of one entailment query (all paths:
/// syntactic, cached, memoized, solver).
pub const ENTAIL_NS: &str = "consolidate.entail_ns";
/// Counter: cross-simplification hits — a model-guided rewrite (Fig. 3)
/// confirmed by the solver and applied.
pub const SIMPLIFY_HITS: &str = "consolidate.simplify.hits";
/// Counter: program pairs consolidated (one per Ω run).
pub const PAIRS: &str = "consolidate.pairs";
/// Counter: pairs that degraded to a sequential merge (budget/panic).
pub const PAIRS_DEGRADED: &str = "consolidate.pairs_degraded";
/// Histogram: cumulative budget queries charged, observed at the end of each
/// pair — the budget consumption timeline across a `consolidate_many` run.
pub const BUDGET_QUERIES: &str = "consolidate.budget.queries_charged";
/// Histogram (ns): wall-clock latency of one pair consolidation.
pub const PAIR_NS: &str = "consolidate.pair_ns";

// ---- naiad-lite / plan-cache: execution layer -----------------------------

/// Counter: records evaluated by the engine (per mode invocation).
pub const ENGINE_RECORDS: &str = "engine.records";
/// Histogram (ns): per-record UDF evaluation latency (all queries on that
/// record, one mode). Only collected when the recorder is enabled.
pub const ENGINE_RECORD_NS: &str = "engine.record_ns";
/// Counter: records quarantined (any error kind).
pub const ENGINE_QUARANTINED: &str = "engine.quarantined.records";
/// Counter: records quarantined by a duplicate `notify`.
pub const ENGINE_QUARANTINED_DUPLICATE_NOTIFY: &str = "engine.quarantined.duplicate_notify";
/// Counter: records quarantined by a library-function error.
pub const ENGINE_QUARANTINED_LIB: &str = "engine.quarantined.lib";
/// Counter: records quarantined by fuel exhaustion.
pub const ENGINE_QUARANTINED_OUT_OF_FUEL: &str = "engine.quarantined.out_of_fuel";
/// Counter: records quarantined by a caught UDF panic.
pub const ENGINE_QUARANTINED_PANIC: &str = "engine.quarantined.panic";
/// Counter: retry attempts made on transiently-faulting records before
/// quarantine (primary execution path only; guard shadow runs retry
/// silently).
pub const ENGINE_RETRIES: &str = "engine.retries";
/// Counter: records shadow-executed through the sequential `Many` path by
/// the plan guard for cross-validation against the consolidated plan.
pub const GUARD_SHADOW_RUNS: &str = "guard.shadow_runs";
/// Counter: shadowed records whose sequential outputs or quarantine
/// decision diverged from the consolidated plan.
pub const GUARD_MISMATCHES: &str = "guard.mismatches";
/// Counter: jobs demoted to sequential execution after the guard's
/// mismatch threshold was breached.
pub const GUARD_DEMOTIONS: &str = "guard.demotions";
/// Histogram (ns): wall-clock latency of one guard shadow run (the
/// sequential re-evaluation plus the comparison).
pub const GUARD_NS: &str = "engine.guard_ns";
/// Histogram (ns): wall-clock latency of evaluating one record batch under
/// the columnar backend (gather + all programs over every lane; policy
/// handling of the lanes is accounted separately under
/// [`ENGINE_RECORD_NS`]).
pub const ENGINE_BATCH_NS: &str = "engine.batch_ns";
/// Histogram (ns): wall-clock latency of lowering one stack-bytecode
/// program to register bytecode (constant folding + copy propagation),
/// summed over the programs of a query set and observed once per compile.
pub const REGCODE_FOLD_NS: &str = "regcode.fold_ns";
/// Counter: snapshot entries skipped by salvage-on-load because their
/// payload was corrupt or truncated.
pub const CACHE_SNAPSHOT_SALVAGED: &str = "cache.snapshot_salvaged";
/// Counter: plan-cache lookups served as-is.
pub const PLAN_CACHE_HIT: &str = "plan_cache.hit";
/// Counter: plan-cache misses (fresh consolidation stored).
pub const PLAN_CACHE_MISS: &str = "plan_cache.miss";
/// Counter: plan-cache hits on a degraded entry that were re-consolidated
/// and upgraded to a better tier.
pub const PLAN_CACHE_UPGRADE: &str = "plan_cache.upgrade";
/// Counter: plan-cache entries removed by tag-scoped invalidation (e.g. a
/// tenant demotion evicting every plan derived from that tenant's queries).
pub const PLAN_CACHE_TAG_INVALIDATED: &str = "plan_cache.tag_invalidated";
/// Counter: entailment-memo verdicts dropped because a query they were
/// derived from was demoted or quarantined at runtime.
pub const ENTAIL_MEMO_INVALIDATED: &str = "consolidate.entail.memo_invalidated";

// ---- prefilter: cross-query predicate pushdown ----------------------------

/// Counter: pre-filters synthesized, verified sound and attached to a plan.
pub const PREFILTER_SYNTHESIZED: &str = "prefilter.synthesized";
/// Counter: candidate pre-filters rejected by the verifier or the cost
/// ceiling (fail-open: the plan runs unfiltered).
pub const PREFILTER_REJECTED: &str = "prefilter.rejected";
/// Counter: candidate extraction produced `true` — no cheap-field atom
/// bounds any query, nothing to push down.
pub const PREFILTER_TRIVIAL: &str = "prefilter.trivial";
/// Histogram: symbolic paths of the merged program discharged by one
/// successful verification.
pub const PREFILTER_PATHS: &str = "prefilter.verify.paths";
/// Histogram (ns): wall-clock latency of one synthesis attempt (candidate
/// extraction plus verification, successful or not).
pub const PREFILTER_NS: &str = "prefilter.synth_ns";
/// Counter: records skipped by a verified pre-filter (the merged program
/// never ran; all queries were notified `false` by construction).
pub const PREFILTER_RECORDS_SKIPPED: &str = "prefilter.records.skipped";
/// Counter: records that passed the pre-filter and ran the merged program.
pub const PREFILTER_RECORDS_PASSED: &str = "prefilter.records.passed";

// ---- user-defined aggregations --------------------------------------------

/// Counter: per-record fold steps executed by the aggregation engine
/// (one per surviving (record, UDAF) pair, both modes).
pub const AGG_FOLDS: &str = "agg.folds";
/// Counter: partial-state merges executed by the deterministic merge tree.
pub const AGG_MERGES: &str = "agg.merges";
/// Counter: homomorphism obligations actually discharged against the
/// solver (memo hits and refused-loop definitions are not counted here).
pub const AGG_HOMOMORPHISM_CHECKS: &str = "agg.homomorphism_checks";
/// Counter: homomorphism verdicts answered from the shared proof memo
/// without re-proving.
pub const AGG_PROOF_MEMO_HITS: &str = "agg.proof_memo_hits";
/// Histogram (ns): wall-clock latency of one per-record fold step (all
/// consolidated UDAFs on that record). Only collected when the recorder is
/// enabled.
pub const ENGINE_FOLD_NS: &str = "engine.fold_ns";

// ---- udf-serve: consolidation-as-a-service --------------------------------

/// Counter: records admitted into the service's bounded ingest queue.
pub const SERVE_ADMITTED: &str = "serve.admitted";
/// Counter: records rejected at admission (queue full, tenant quarantined);
/// rejections are explicit — the submitter is told, nothing is dropped
/// silently.
pub const SERVE_REJECTED: &str = "serve.rejected";
/// Counter: admitted records shed by deadline-aware load shedding (queue
/// pressure above the shed watermark and the batch past its deadline).
/// Every shed record is accounted in the epoch report.
pub const SERVE_SHED: &str = "serve.shed";
/// Counter: records fully processed by the service (notified or accounted
/// in quarantine). `admitted == processed + shed + still-queued` always.
pub const SERVE_PROCESSED: &str = "serve.processed";
/// Counter: delta-consolidation operations applied to the live plan (one
/// per register/deregister that re-consolidated a spine).
pub const SERVE_DELTA_RECONSOLIDATIONS: &str = "serve.delta_reconsolidations";
/// Counter: tenants demoted out of the shared consolidated plan after their
/// UDF tripped the plan guard or blew their quarantine budget.
pub const SERVE_TENANT_DEMOTIONS: &str = "serve.tenant_demotions";
/// Counter: epochs executed by the service loop.
pub const SERVE_EPOCHS: &str = "serve.epochs";
/// Counter: times a service was reconstructed from its journal via
/// `Service::recover` (each successful recovery bumps this once).
pub const SERVE_RECOVERIES: &str = "serve.recoveries";

// ---- udf-serve: write-ahead epoch journal ---------------------------------

/// Counter: frames appended to the write-ahead journal (one per durable
/// state transition: register, deregister, submit, reject, epoch commit).
pub const JOURNAL_APPENDS: &str = "journal.appends";
/// Counter: checkpoint compactions (journal prefix folded into a full-state
/// snapshot published via atomic tmp+fsync+rename).
pub const JOURNAL_CHECKPOINTS: &str = "journal.checkpoints";
/// Counter: journal frames replayed into service state during recovery.
pub const JOURNAL_FRAMES_REPLAYED: &str = "journal.frames_replayed";
/// Counter: journal frames skipped during recovery because the checkpoint
/// already covered them (`seq <= checkpoint.last_seq`) — the exactly-once
/// guard for a crash between checkpoint rename and journal truncation.
pub const JOURNAL_FRAMES_SKIPPED: &str = "journal.frames_skipped";
/// Counter: torn or corrupt tail frames salvaged (truncated away) during
/// recovery. Anything beyond the first bad frame is unreachable by
/// append-only writing, so salvage stops there.
pub const JOURNAL_FRAMES_SALVAGED: &str = "journal.frames_salvaged";
