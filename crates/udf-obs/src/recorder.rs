//! The [`Recorder`] sink trait and its two canonical implementations.
//!
//! Instrumented code holds a [`crate::RecorderCell`] and calls
//! `add`/`observe`/`span` unconditionally; the default sink is
//! [`NoopRecorder`], whose methods compile to nothing observable, so
//! instrumentation costs ~one predicted branch unless a user installs a
//! [`MemoryRecorder`] (or their own sink).

use crate::histogram::Histogram;
use crate::snapshot::MetricsSnapshot;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A metrics sink. Implementations must be cheap and thread-safe: recorders
/// are shared across pair-consolidation threads and engine worker shards.
pub trait Recorder: Send + Sync {
    /// Whether this sink keeps data. Callers use this to skip *collection*
    /// work (e.g. reading the clock); they may still call `add`/`observe`.
    fn enabled(&self) -> bool {
        true
    }

    /// Increments counter `metric` by `delta`.
    fn add(&self, metric: &'static str, delta: u64);

    /// Records `value` into histogram `metric`.
    fn observe(&self, metric: &'static str, value: u64);

    /// A point-in-time copy of everything recorded, if this sink keeps data.
    fn snapshot(&self) -> Option<MetricsSnapshot> {
        None
    }
}

/// The default sink: drops everything, reports [`Recorder::enabled`] `false`.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn add(&self, _metric: &'static str, _delta: u64) {}

    fn observe(&self, _metric: &'static str, _value: u64) {}
}

/// An in-memory sink: lock-free atomic updates on the hot path (a read lock
/// plus a relaxed `fetch_add`), a write lock only the first time a metric
/// name is seen.
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    counters: RwLock<BTreeMap<&'static str, Arc<AtomicU64>>>,
    histograms: RwLock<BTreeMap<&'static str, Arc<Histogram>>>,
}

impl MemoryRecorder {
    /// An empty recorder.
    pub fn new() -> MemoryRecorder {
        MemoryRecorder::default()
    }

    fn counter_cell(&self, metric: &'static str) -> Arc<AtomicU64> {
        if let Some(c) = self.counters.read().expect("poisoned").get(metric) {
            return Arc::clone(c);
        }
        let mut w = self.counters.write().expect("poisoned");
        Arc::clone(w.entry(metric).or_default())
    }

    fn histogram_cell(&self, metric: &'static str) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().expect("poisoned").get(metric) {
            return Arc::clone(h);
        }
        let mut w = self.histograms.write().expect("poisoned");
        Arc::clone(w.entry(metric).or_default())
    }
}

impl Recorder for MemoryRecorder {
    fn add(&self, metric: &'static str, delta: u64) {
        self.counter_cell(metric).fetch_add(delta, Ordering::Relaxed);
    }

    fn observe(&self, metric: &'static str, value: u64) {
        self.histogram_cell(metric).record(value);
    }

    fn snapshot(&self) -> Option<MetricsSnapshot> {
        let mut snap = MetricsSnapshot::default();
        for (&k, v) in self.counters.read().expect("poisoned").iter() {
            snap.counters
                .insert(k.to_string(), v.load(Ordering::Relaxed));
        }
        for (&k, h) in self.histograms.read().expect("poisoned").iter() {
            snap.histograms.insert(k.to_string(), h.snapshot());
        }
        Some(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_records_nothing() {
        let r = NoopRecorder;
        r.add("x", 1);
        r.observe("y", 2);
        assert!(!r.enabled());
        assert!(r.snapshot().is_none());
    }

    #[test]
    fn memory_counts_and_observes() {
        let r = MemoryRecorder::new();
        r.add("a", 2);
        r.add("a", 3);
        r.observe("h", 7);
        let s = r.snapshot().unwrap();
        assert_eq!(s.counter("a"), 5);
        assert_eq!(s.histogram("h").unwrap().count, 1);
        assert_eq!(s.histogram("h").unwrap().sum, 7);
    }

    #[test]
    fn memory_is_shareable_across_threads() {
        let r = Arc::new(MemoryRecorder::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let r = Arc::clone(&r);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        r.add("n", 1);
                        r.observe("v", 3);
                    }
                });
            }
        });
        let s = r.snapshot().unwrap();
        assert_eq!(s.counter("n"), 4000);
        assert_eq!(s.histogram("v").unwrap().count, 4000);
    }
}
