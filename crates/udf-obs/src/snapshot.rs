//! Point-in-time metrics snapshots and their hand-rolled JSON codec.
//!
//! The workspace is dependency-free by policy (offline build container), so
//! the JSON writer and reader here implement exactly the subset the snapshot
//! format needs: objects, strings with `\"`/`\\`/`\n`/`\t`/`\uXXXX` escapes,
//! unsigned integers, and arrays of `[index, count]` pairs. Round-tripping is
//! tested property-style in the crate's test suite.

use crate::histogram::HistogramSnapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A point-in-time copy of every counter and histogram a recorder holds.
///
/// Snapshots are plain data: they compare with `==` (used by the
/// metrics/stats coherence tests), serialize to JSON with
/// [`MetricsSnapshot::to_json`], and parse back with
/// [`MetricsSnapshot::from_json`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Monotonic counters by metric name.
    pub counters: BTreeMap<String, u64>,
    /// Histograms by metric name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// The value of counter `name`, or `0` if it was never incremented.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The histogram recorded under `name`, if any sample was observed.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Serializes the snapshot as a single JSON object:
    ///
    /// ```json
    /// {"counters": {"smt.checks": 12},
    ///  "histograms": {"smt.check_ns": {"count": 2, "sum": 90, "min": 40,
    ///                                   "max": 50, "buckets": [[6, 2]]}}}
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(&mut out, k);
            let _ = write!(out, ":{v}");
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(&mut out, k);
            let _ = write!(
                out,
                ":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
                h.count, h.sum, h.min, h.max
            );
            for (j, (b, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{b},{n}]");
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }

    /// Parses a snapshot previously produced by [`MetricsSnapshot::to_json`].
    pub fn from_json(text: &str) -> Result<MetricsSnapshot, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let snap = p.snapshot()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing input"));
        }
        Ok(snap)
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Error from [`MetricsSnapshot::from_json`]: a message plus byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input where parsing failed.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&e) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-utf8 \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid codepoint"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = utf8_len(b).ok_or_else(|| self.err("invalid utf8"))?;
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| self.err("truncated utf8"))?;
                    let s =
                        std::str::from_utf8(chunk).map_err(|_| self.err("invalid utf8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<u64, JsonError> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit())
        {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.err("expected number"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are ascii")
            .parse()
            .map_err(|_| self.err("number out of range"))
    }

    fn snapshot(&mut self) -> Result<MetricsSnapshot, JsonError> {
        let mut snap = MetricsSnapshot::default();
        self.expect(b'{')?;
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(snap);
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            match key.as_str() {
                "counters" => snap.counters = self.counter_map()?,
                "histograms" => snap.histograms = self.histogram_map()?,
                _ => return Err(self.err("unknown top-level key")),
            }
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(snap);
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn counter_map(&mut self) -> Result<BTreeMap<String, u64>, JsonError> {
        let mut out = BTreeMap::new();
        self.expect(b'{')?;
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            out.insert(key, self.number()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(out);
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn histogram_map(&mut self) -> Result<BTreeMap<String, HistogramSnapshot>, JsonError> {
        let mut out = BTreeMap::new();
        self.expect(b'{')?;
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            out.insert(key, self.histogram()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(out);
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn histogram(&mut self) -> Result<HistogramSnapshot, JsonError> {
        let mut h = HistogramSnapshot::default();
        self.expect(b'{')?;
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(h);
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            match key.as_str() {
                "count" => h.count = self.number()?,
                "sum" => h.sum = self.number()?,
                "min" => h.min = self.number()?,
                "max" => h.max = self.number()?,
                "buckets" => {
                    self.expect(b'[')?;
                    if self.peek() == Some(b']') {
                        self.pos += 1;
                    } else {
                        loop {
                            self.expect(b'[')?;
                            let idx = self.number()?;
                            self.expect(b',')?;
                            let n = self.number()?;
                            self.expect(b']')?;
                            let idx = u8::try_from(idx)
                                .map_err(|_| self.err("bucket index out of range"))?;
                            h.buckets.push((idx, n));
                            match self.peek() {
                                Some(b',') => self.pos += 1,
                                Some(b']') => {
                                    self.pos += 1;
                                    break;
                                }
                                _ => return Err(self.err("expected ',' or ']'")),
                            }
                        }
                    }
                }
                _ => return Err(self.err("unknown histogram key")),
            }
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(h);
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0x00..=0x7f => Some(1),
        0xc0..=0xdf => Some(2),
        0xe0..=0xef => Some(3),
        0xf0..=0xf7 => Some(4),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        let mut s = MetricsSnapshot::default();
        s.counters.insert("smt.checks".into(), 12);
        s.counters.insert("consolidate.rule.if4".into(), 3);
        s.histograms.insert(
            "smt.check_ns".into(),
            HistogramSnapshot {
                count: 2,
                sum: 90,
                min: 40,
                max: 50,
                buckets: vec![(6, 2)],
            },
        );
        s
    }

    #[test]
    fn round_trip() {
        let s = sample();
        let json = s.to_json();
        assert_eq!(MetricsSnapshot::from_json(&json).unwrap(), s);
    }

    #[test]
    fn empty_round_trip() {
        let s = MetricsSnapshot::default();
        assert_eq!(MetricsSnapshot::from_json(&s.to_json()).unwrap(), s);
    }

    #[test]
    fn escapes_round_trip() {
        let mut s = MetricsSnapshot::default();
        s.counters.insert("weird \"name\"\\with\nstuff\tπ".into(), 7);
        assert_eq!(MetricsSnapshot::from_json(&s.to_json()).unwrap(), s);
    }

    #[test]
    fn rejects_garbage() {
        assert!(MetricsSnapshot::from_json("not json").is_err());
        assert!(MetricsSnapshot::from_json("{\"counters\":{}}{").is_err());
        assert!(MetricsSnapshot::from_json("{\"bogus\":{}}").is_err());
    }

    #[test]
    fn counter_lookup_defaults_to_zero() {
        assert_eq!(sample().counter("smt.checks"), 12);
        assert_eq!(sample().counter("absent"), 0);
    }
}
