//! Property tests for the log₂ histogram: the fast `leading_zeros` bucket
//! mapping must agree with a naive reference that scans bucket bounds, and
//! snapshots must account for every recorded sample exactly once.

// Integration tests may unwrap freely; the clippy gate denies it in src/.
#![allow(clippy::unwrap_used)]

use proptest::prelude::*;
use udf_obs::{bucket_bounds, bucket_index, Histogram, MetricsSnapshot, RecorderCell, BUCKETS};

/// Reference bucketing: linear scan over the documented inclusive bounds.
fn reference_bucket(value: u64) -> usize {
    (0..BUCKETS)
        .find(|&i| {
            let (lo, hi) = bucket_bounds(i);
            lo <= value && value <= hi
        })
        .expect("bounds cover u64")
}

proptest! {
    #[test]
    fn bucket_index_matches_reference(v in any::<u64>()) {
        prop_assert_eq!(bucket_index(v), reference_bucket(v));
    }

    #[test]
    fn snapshot_accounts_for_every_sample(vs in prop::collection::vec(any::<u64>(), 0..200)) {
        let h = Histogram::new();
        for &v in &vs {
            h.record(v);
        }
        let s = h.snapshot();
        prop_assert_eq!(s.count, vs.len() as u64);
        let bucket_total: u64 = s.buckets.iter().map(|&(_, n)| n).sum();
        prop_assert_eq!(bucket_total, vs.len() as u64);
        prop_assert_eq!(s.sum, vs.iter().fold(0u64, |a, &v| a.wrapping_add(v)));
        if let (Some(&lo), Some(&hi)) = (vs.iter().min(), vs.iter().max()) {
            prop_assert_eq!(s.min, lo);
            prop_assert_eq!(s.max, hi);
        }
        // Each sample must be counted in exactly the bucket the reference
        // mapping assigns it.
        for i in 0..BUCKETS {
            let expected = vs.iter().filter(|&&v| reference_bucket(v) == i).count() as u64;
            let got = s.buckets.iter().find(|&&(b, _)| b as usize == i).map_or(0, |&(_, n)| n);
            prop_assert_eq!(got, expected, "bucket {} disagrees", i);
        }
    }

    #[test]
    fn json_round_trips_arbitrary_snapshots(
        counters in prop::collection::vec((any::<u16>(), any::<u64>()), 0..20),
        samples in prop::collection::vec(any::<u64>(), 0..100),
    ) {
        // Build a snapshot through the real recorder surface so the data is
        // shaped exactly like production dumps.
        let cell = RecorderCell::memory();
        static NAMES: [&str; 4] = ["a.one", "b.two", "c.three", "d.four_ns"];
        for (k, v) in &counters {
            cell.add(NAMES[(*k as usize) % 3], *v % (1 << 32));
        }
        for v in &samples {
            cell.observe(NAMES[3], *v);
        }
        let snap = cell.snapshot().expect("memory recorder snapshots");
        let parsed = MetricsSnapshot::from_json(&snap.to_json()).expect("own dump parses");
        prop_assert_eq!(parsed, snap);
    }
}

#[test]
fn bounds_partition_u64() {
    let mut next = 0u64;
    for i in 0..BUCKETS {
        let (lo, hi) = bucket_bounds(i);
        assert_eq!(lo, next, "bucket {i} does not start where {} ended", i.wrapping_sub(1));
        assert!(hi >= lo);
        if i + 1 < BUCKETS {
            next = hi + 1;
        } else {
            assert_eq!(hi, u64::MAX);
        }
    }
}
