//! Bounded ingest with explicit admit/reject/shed decisions.
//!
//! The queue's contract is *no silent drops*: every record that enters the
//! service is eventually accounted as processed or shed, and every record
//! that does not enter is rejected back to the submitter with a reason.
//! [`crate::Service`] enforces the invariant
//! `admitted == processed + shed + queued` after every epoch.

use std::collections::VecDeque;

/// Outcome of one [`crate::Service::submit`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Admission {
    /// The batch entered the queue.
    Admitted {
        /// Monotone batch id (also the shed report's handle).
        batch: u64,
        /// Records queued after this admission.
        queued: usize,
    },
    /// The batch was refused; none of its records entered the queue.
    Rejected {
        /// Why.
        reason: RejectReason,
    },
}

impl Admission {
    /// The batch id, when admitted.
    pub fn batch(&self) -> Option<u64> {
        match self {
            Admission::Admitted { batch, .. } => Some(*batch),
            Admission::Rejected { .. } => None,
        }
    }
}

/// Why a batch was refused at admission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// Admitting the batch would exceed the queue's record capacity.
    QueueFull {
        /// Records currently queued.
        queued: usize,
        /// The configured capacity.
        capacity: usize,
    },
    /// The batch contained no records.
    EmptyBatch,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::QueueFull { queued, capacity } => {
                write!(f, "queue full ({queued}/{capacity} records)")
            }
            RejectReason::EmptyBatch => write!(f, "empty batch"),
        }
    }
}

/// One batch dropped by deadline-aware load shedding — reported, never
/// silent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShedBatch {
    /// The batch id returned at admission.
    pub batch: u64,
    /// Records in the batch (all shed together; batches are atomic).
    pub records: usize,
    /// Epoch at which the batch was admitted.
    pub submitted_epoch: u64,
    /// Epochs the batch waited before being shed.
    pub waited_epochs: u64,
}

pub(crate) struct PendingBatch<R> {
    pub id: u64,
    pub submitted_epoch: u64,
    /// Global sequence number of the batch's first record.
    pub start_seq: u64,
    pub records: Vec<R>,
}

/// FIFO queue of admitted batches, bounded in records.
pub(crate) struct IngestQueue<R> {
    batches: VecDeque<PendingBatch<R>>,
    queued_records: usize,
    capacity: usize,
    next_batch: u64,
    next_seq: u64,
}

impl<R> IngestQueue<R> {
    pub fn new(capacity: usize) -> IngestQueue<R> {
        IngestQueue {
            batches: VecDeque::new(),
            queued_records: 0,
            capacity: capacity.max(1),
            next_batch: 0,
            next_seq: 0,
        }
    }

    pub fn queued_records(&self) -> usize {
        self.queued_records
    }

    /// Next batch id to be assigned (checkpointed so recovery continues
    /// the same id sequence).
    pub fn next_batch(&self) -> u64 {
        self.next_batch
    }

    /// Next global record sequence number to be assigned.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Restores the id/sequence counters from a checkpoint.
    pub fn set_counters(&mut self, next_batch: u64, next_seq: u64) {
        self.next_batch = next_batch;
        self.next_seq = next_seq;
    }

    /// The queued batches in admission order (for checkpointing).
    pub fn batches(&self) -> impl Iterator<Item = &PendingBatch<R>> {
        self.batches.iter()
    }

    /// The most recently admitted batch, if any still queued.
    pub fn back(&self) -> Option<&PendingBatch<R>> {
        self.batches.back()
    }

    /// Re-enqueues a batch exactly as recorded (recovery replay). Counters
    /// advance so post-recovery admissions continue the same sequences.
    pub fn restore_batch(&mut self, batch: PendingBatch<R>) {
        self.queued_records += batch.records.len();
        self.next_batch = self.next_batch.max(batch.id + 1);
        self.next_seq = self.next_seq.max(batch.start_seq + batch.records.len() as u64);
        self.batches.push_back(batch);
    }

    /// Queue depth as a fraction of capacity, in `[0.0, ∞)` (a single batch
    /// larger than the whole capacity is rejected, so in practice ≤ 1.0).
    pub fn pressure(&self) -> f64 {
        self.queued_records as f64 / self.capacity as f64
    }

    pub fn offer(&mut self, records: Vec<R>, epoch: u64) -> Admission {
        if records.is_empty() {
            return Admission::Rejected {
                reason: RejectReason::EmptyBatch,
            };
        }
        if self.queued_records + records.len() > self.capacity {
            return Admission::Rejected {
                reason: RejectReason::QueueFull {
                    queued: self.queued_records,
                    capacity: self.capacity,
                },
            };
        }
        let id = self.next_batch;
        self.next_batch += 1;
        let start_seq = self.next_seq;
        self.next_seq += records.len() as u64;
        self.queued_records += records.len();
        self.batches.push_back(PendingBatch {
            id,
            submitted_epoch: epoch,
            start_seq,
            records,
        });
        Admission::Admitted {
            batch: id,
            queued: self.queued_records,
        }
    }

    /// Removes and returns every batch older than `deadline_epochs` at
    /// `epoch` (admission order preserved).
    pub fn shed_expired(&mut self, epoch: u64, deadline_epochs: u64) -> Vec<(ShedBatch, Vec<R>)> {
        let mut shed = Vec::new();
        let mut keep = VecDeque::with_capacity(self.batches.len());
        for b in self.batches.drain(..) {
            let waited = epoch.saturating_sub(b.submitted_epoch);
            if waited > deadline_epochs {
                self.queued_records -= b.records.len();
                shed.push((
                    ShedBatch {
                        batch: b.id,
                        records: b.records.len(),
                        submitted_epoch: b.submitted_epoch,
                        waited_epochs: waited,
                    },
                    b.records,
                ));
            } else {
                keep.push_back(b);
            }
        }
        self.batches = keep;
        shed
    }

    /// Pops front batches until `limit` records are taken (the first batch
    /// is always taken even if it alone exceeds the limit: batches are
    /// atomic units).
    pub fn drain_up_to(&mut self, limit: usize) -> Vec<PendingBatch<R>> {
        let mut out = Vec::new();
        let mut taken = 0usize;
        while let Some(front) = self.batches.front() {
            let n = front.records.len();
            if !out.is_empty() && taken + n > limit {
                break;
            }
            taken += n;
            self.queued_records -= n;
            out.push(self.batches.pop_front().expect("front checked"));
            if taken >= limit {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_over_capacity_without_enqueueing() {
        let mut q: IngestQueue<i64> = IngestQueue::new(5);
        assert!(matches!(
            q.offer(vec![1, 2, 3], 0),
            Admission::Admitted { batch: 0, queued: 3 }
        ));
        let r = q.offer(vec![4, 5, 6], 0);
        assert!(matches!(
            r,
            Admission::Rejected {
                reason: RejectReason::QueueFull { queued: 3, capacity: 5 }
            }
        ));
        assert_eq!(q.queued_records(), 3, "rejected records must not enter");
        assert!(matches!(
            q.offer(vec![], 0),
            Admission::Rejected { reason: RejectReason::EmptyBatch }
        ));
    }

    #[test]
    fn shedding_is_deadline_scoped_and_accounted() {
        let mut q: IngestQueue<i64> = IngestQueue::new(100);
        q.offer(vec![1, 2], 0);
        q.offer(vec![3], 5);
        let shed = q.shed_expired(8, 4);
        assert_eq!(shed.len(), 1);
        assert_eq!(shed[0].0.batch, 0);
        assert_eq!(shed[0].0.records, 2);
        assert_eq!(shed[0].0.waited_epochs, 8);
        assert_eq!(shed[0].1, vec![1, 2]);
        assert_eq!(q.queued_records(), 1, "young batch survives");
    }

    #[test]
    fn drain_respects_the_limit_but_keeps_batches_atomic() {
        let mut q: IngestQueue<i64> = IngestQueue::new(100);
        q.offer(vec![1, 2, 3], 0);
        q.offer(vec![4, 5], 0);
        q.offer(vec![6], 0);
        let got = q.drain_up_to(4);
        assert_eq!(got.len(), 1, "batch 1 would cross the limit: left queued");
        assert_eq!(got[0].records.len(), 3);
        assert_eq!(q.queued_records(), 3);
        let got = q.drain_up_to(4);
        let taken: usize = got.iter().map(|b| b.records.len()).sum();
        assert_eq!(taken, 3, "2 + 1 fit together under the limit");
        assert_eq!(q.queued_records(), 0);
        // A first batch larger than the limit is still taken whole.
        let mut q2: IngestQueue<i64> = IngestQueue::new(100);
        q2.offer(vec![1, 2, 3, 4], 0);
        let got = q2.drain_up_to(2);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].records.len(), 4);
    }
}
