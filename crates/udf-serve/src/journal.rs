//! The write-ahead epoch journal: crash-consistent durability for the
//! service.
//!
//! A journaled service (see [`crate::Service::open`] /
//! [`crate::Service::recover`]) appends one checksummed frame per state
//! transition — register, deregister, submit/reject, epoch commit — to
//! `journal.log` inside its durability directory, using the workspace's
//! shared [`plan_cache::framing`] record format. Periodically the journal
//! prefix is folded into a full-state `checkpoint` file (atomic
//! tmp+fsync+rename, the same publication discipline as the plan-cache
//! snapshot), after which the journal is truncated back to its header.
//!
//! # Crash model and invariants
//!
//! - **Journal before acknowledge.** Every mutating service call appends
//!   its frame *before* returning to the caller. A crash mid-call can lose
//!   at most the one unacknowledged operation — exactly the operation
//!   whose caller never saw an `Ok`.
//! - **Frames are sequenced.** Frame sequence numbers are monotone across
//!   truncations and never reset. A checkpoint records the first sequence
//!   number it does *not* cover; recovery skips journal frames below it,
//!   which makes a crash between checkpoint rename and journal truncation
//!   harmless (the stale frames replay as no-ops).
//! - **Torn tails are salvaged, never parsed.** The first frame that fails
//!   length/terminator/checksum/sequence validation ends replay; it and
//!   everything after it are truncated away, reported through
//!   [`RecoveryReport`] with the same [`RecoveryIncident`] shape the
//!   plan-cache salvage uses.
//! - **Epoch commits are exactly-once.** `run_epoch` appends a single
//!   commit frame carrying the epoch's engine-dependent effects (demotions,
//!   per-tenant quarantine deltas) plus an output digest. Replay re-derives
//!   the deterministic parts (churn drain, shedding, batch drain) from the
//!   reconstructed queue and applies the journaled effects — records are
//!   never re-executed, so no record is double-processed. A crash before
//!   the commit frame means the epoch never happened: memory died with the
//!   process and no durable trace remains.
//!
//! # Crash-point injection
//!
//! [`SimCrash`] arms exactly one simulated crash at one of the enumerated
//! [`CrashPoint`]s. When it fires, the journal performs the partial or
//! unsynced write that a real crash at that point could leave behind
//! (including a seeded torn-write + bit-flip for [`CrashPoint::MidAppend`])
//! and returns [`JournalError::SimulatedCrash`]; the service poisons itself
//! and every subsequent call fails, modeling a dead process. Tests then
//! recover from the directory and diff against an uncrashed reference —
//! `tests/recovery_matrix.rs` sweeps every point, driven by `ci/chaos.sh`.

use plan_cache::framing::{self, RecoveryIncident};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use udf_obs::names;

/// Journal file name inside the durability directory.
pub const JOURNAL_FILE: &str = "journal.log";
/// Checkpoint file name inside the durability directory.
pub const CHECKPOINT_FILE: &str = "checkpoint";

const JOURNAL_HEADER: &str = "udf-serve-journal v1";
const CHECKPOINT_HEADER: &str = "udf-serve-checkpoint v1";
const SUBSYSTEM_JOURNAL: &str = "journal";

/// A durability-critical instant at which [`SimCrash`] can kill the
/// process's write mid-flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Inside a frame append: a seeded prefix of the frame reaches the
    /// file, with one seeded bit flipped — a torn, corrupt tail.
    MidAppend,
    /// After the frame bytes are written but before `fsync`: the frame is
    /// complete in the file but was never acknowledged to the caller.
    PostAppendPreFsync,
    /// Inside the checkpoint temp-file write: a seeded prefix of the new
    /// checkpoint exists only under the temp name.
    MidCheckpoint,
    /// After the checkpoint temp file is written and synced but before the
    /// rename: the old checkpoint is still the published one.
    PostCheckpointFsyncPreRename,
    /// After the checkpoint rename but before the journal truncation: the
    /// new checkpoint is live while the journal still holds frames the
    /// checkpoint already covers.
    PostRenamePreTruncate,
}

impl fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            CrashPoint::MidAppend => "mid-append",
            CrashPoint::PostAppendPreFsync => "post-append-pre-fsync",
            CrashPoint::MidCheckpoint => "mid-checkpoint",
            CrashPoint::PostCheckpointFsyncPreRename => "post-checkpoint-fsync-pre-rename",
            CrashPoint::PostRenamePreTruncate => "post-rename-pre-journal-truncate",
        };
        f.write_str(name)
    }
}

impl CrashPoint {
    /// Every enumerated crash point, in durability-pipeline order — the
    /// sweep domain for chaos tests.
    pub const ALL: [CrashPoint; 5] = [
        CrashPoint::MidAppend,
        CrashPoint::PostAppendPreFsync,
        CrashPoint::MidCheckpoint,
        CrashPoint::PostCheckpointFsyncPreRename,
        CrashPoint::PostRenamePreTruncate,
    ];
}

/// One armed simulated crash (see [`crate::ServeConfig::sim_crash`]).
///
/// Append points fire on the `after`-th frame append (1-based); checkpoint
/// points fire on the `after`-th checkpoint attempt. `seed` drives the torn
/// prefix length and bit-flip position for the corrupting points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimCrash {
    /// Where in the durability pipeline the crash strikes.
    pub point: CrashPoint,
    /// Which occurrence (1-based) of the point's operation triggers it.
    pub after: u64,
    /// Seed for torn-write length and bit-flip position.
    pub seed: u64,
}

/// Errors from the durability layer.
#[derive(Debug, Clone)]
pub enum JournalError {
    /// An I/O operation on the journal or checkpoint failed.
    Io(String),
    /// A durable artifact that must be intact (an atomically-published
    /// checkpoint, the journal header, frame contents needed for replay)
    /// failed validation.
    Corrupt(String),
    /// The armed [`SimCrash`] fired; the service is now poisoned and must
    /// be recovered from disk.
    SimulatedCrash(CrashPoint),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal io: {e}"),
            JournalError::Corrupt(e) => write!(f, "journal corrupt: {e}"),
            JournalError::SimulatedCrash(p) => write!(f, "simulated crash at {p}"),
        }
    }
}

impl std::error::Error for JournalError {}

fn io_err(e: io::Error) -> JournalError {
    JournalError::Io(e.to_string())
}

/// Single-line wire codec for the service's record type, required to open
/// or recover a journaled service. The encoding must be injective and must
/// not contain newlines.
pub trait JournalRec: Sized {
    /// Renders the record as one line (no trailing newline).
    fn encode_rec(&self) -> String;
    /// Parses a line produced by [`JournalRec::encode_rec`].
    ///
    /// # Errors
    ///
    /// A human-readable reason when the line does not parse.
    fn decode_rec(line: &str) -> Result<Self, String>;
}

impl JournalRec for Vec<i64> {
    fn encode_rec(&self) -> String {
        let mut out = String::new();
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(&v.to_string());
        }
        out
    }

    fn decode_rec(line: &str) -> Result<Vec<i64>, String> {
        line.split_ascii_whitespace()
            .map(|w| w.parse::<i64>().map_err(|_| format!("bad record value {w:?}")))
            .collect()
    }
}

/// The faulty-env record shape `(global_id, payload)` — what
/// `FaultyEnv<ScalarEnv>` ingests (fault plans key on the embedded id, so
/// a recovered service replays the same faults for the same records).
impl JournalRec for (usize, Vec<i64>) {
    fn encode_rec(&self) -> String {
        let payload = self.1.encode_rec();
        if payload.is_empty() {
            self.0.to_string()
        } else {
            format!("{} {payload}", self.0)
        }
    }

    fn decode_rec(line: &str) -> Result<(usize, Vec<i64>), String> {
        let mut words = line.split_ascii_whitespace();
        let id = words
            .next()
            .ok_or("empty faulty record line")?
            .parse::<usize>()
            .map_err(|_| "bad faulty record id".to_owned())?;
        let rest: Result<Vec<i64>, String> = words
            .map(|w| w.parse::<i64>().map_err(|_| format!("bad record value {w:?}")))
            .collect();
        Ok((id, rest?))
    }
}

/// What a service recovery found and did — the journal-side mirror of
/// [`plan_cache::SnapshotRecovery`].
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Frames replayed into service state.
    pub frames_replayed: u64,
    /// Frames skipped because the checkpoint already covered them (crash
    /// between checkpoint rename and journal truncation).
    pub frames_skipped: u64,
    /// Torn or corrupt tail frames truncated away.
    pub frames_salvaged: u64,
    /// Whether the journal ended in a torn tail (salvage fired).
    pub truncated_tail: bool,
    /// One incident per salvaged artifact, in the workspace-shared shape.
    pub incidents: Vec<RecoveryIncident>,
    /// `(epoch, output_digest)` of every replayed epoch commit frame, in
    /// order — chaos tests diff these against the uncrashed reference.
    pub replayed_epoch_digests: Vec<(u64, u64)>,
}

/// The append side of the write-ahead journal, owned by a journaled
/// service. Generic over the service's record type only to capture its
/// [`JournalRec::encode_rec`] as a plain fn pointer, so unbounded service
/// methods can encode records.
pub(crate) struct Journal<R> {
    dir: PathBuf,
    file: File,
    next_seq: u64,
    appends_since_checkpoint: u64,
    appends_total: u64,
    checkpoints_total: u64,
    sim: Option<SimCrash>,
    pub(crate) encode: fn(&R) -> String,
    recorder: udf_obs::RecorderCell,
}

impl<R> fmt::Debug for Journal<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Journal")
            .field("dir", &self.dir)
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

impl<R: JournalRec> Journal<R> {
    /// Creates a fresh journal in `dir` (header only, no frames). Fails if
    /// durable state already exists there — callers must recover instead.
    pub(crate) fn create(
        dir: &Path,
        sim: Option<SimCrash>,
        recorder: udf_obs::RecorderCell,
    ) -> Result<Journal<R>, JournalError> {
        std::fs::create_dir_all(dir).map_err(io_err)?;
        let journal_path = dir.join(JOURNAL_FILE);
        if journal_path.exists() || dir.join(CHECKPOINT_FILE).exists() {
            return Err(JournalError::Io(format!(
                "durable state already exists in {} — use Service::recover",
                dir.display()
            )));
        }
        framing::atomic_write(&journal_path, format!("{JOURNAL_HEADER}\n").as_bytes())
            .map_err(io_err)?;
        Journal::resume(dir, 0, sim, recorder)
    }

    /// Opens the append handle on an existing journal without touching its
    /// contents; `next_seq` continues the recovered sequence.
    pub(crate) fn resume(
        dir: &Path,
        next_seq: u64,
        sim: Option<SimCrash>,
        recorder: udf_obs::RecorderCell,
    ) -> Result<Journal<R>, JournalError> {
        let file = OpenOptions::new()
            .append(true)
            .open(dir.join(JOURNAL_FILE))
            .map_err(io_err)?;
        Ok(Journal {
            dir: dir.to_path_buf(),
            file,
            next_seq,
            appends_since_checkpoint: 0,
            appends_total: 0,
            checkpoints_total: 0,
            sim,
            encode: R::encode_rec,
            recorder,
        })
    }
}

impl<R> Journal<R> {
    /// Sequence number the next appended frame will carry — also the count
    /// of frames ever durably acknowledged (sequences never reset).
    pub(crate) fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Frames appended since the last checkpoint (the compaction trigger).
    pub(crate) fn appends_since_checkpoint(&self) -> u64 {
        self.appends_since_checkpoint
    }

    /// Appends one frame and syncs it; returns its sequence number.
    ///
    /// # Errors
    ///
    /// I/O failures, or [`JournalError::SimulatedCrash`] when the armed
    /// [`SimCrash`] fires here (after performing its partial write).
    pub(crate) fn append(&mut self, kind: &str, payload: &str) -> Result<u64, JournalError> {
        let seq = self.next_seq;
        let frame = framing::render_frame("frame", &[seq.to_string(), kind.to_owned()], payload);
        self.appends_total += 1;
        if let Some(sim) = self.sim {
            if sim.after == self.appends_total {
                match sim.point {
                    CrashPoint::MidAppend => {
                        let bytes = frame.as_bytes();
                        // Torn write: a seeded prefix lands, one seeded bit
                        // flips. `% len` keeps it a strict prefix.
                        let keep = (sim.seed as usize) % bytes.len().max(1);
                        let mut torn = bytes[..keep].to_vec();
                        if !torn.is_empty() {
                            let at = (sim.seed >> 3) as usize % torn.len();
                            torn[at] ^= 1u8 << (sim.seed % 8) as u8;
                        }
                        let _ = self.file.write_all(&torn);
                        let _ = self.file.sync_data();
                        return Err(JournalError::SimulatedCrash(sim.point));
                    }
                    CrashPoint::PostAppendPreFsync => {
                        let _ = self.file.write_all(frame.as_bytes());
                        return Err(JournalError::SimulatedCrash(sim.point));
                    }
                    _ => {}
                }
            }
        }
        self.file.write_all(frame.as_bytes()).map_err(io_err)?;
        self.file.sync_data().map_err(io_err)?;
        self.next_seq = seq + 1;
        self.appends_since_checkpoint += 1;
        self.recorder.add(names::JOURNAL_APPENDS, 1);
        Ok(seq)
    }

    /// Publishes a full-state checkpoint covering every frame below
    /// [`Journal::next_seq`], then truncates the journal back to its
    /// header. Temp-write → fsync → rename → truncate, with the armed
    /// [`SimCrash`] able to strike between any two steps.
    ///
    /// # Errors
    ///
    /// I/O failures or [`JournalError::SimulatedCrash`].
    pub(crate) fn checkpoint(&mut self, payload: &str) -> Result<(), JournalError> {
        self.checkpoints_total += 1;
        let sim = self
            .sim
            .filter(|s| s.after == self.checkpoints_total)
            .map(|s| (s.point, s.seed));
        let mut out = String::new();
        out.push_str(CHECKPOINT_HEADER);
        out.push('\n');
        out.push_str(&framing::render_frame(
            "state",
            &[self.next_seq.to_string()],
            payload,
        ));
        let ckpt = self.dir.join(CHECKPOINT_FILE);
        let tmp = framing::temp_path(&ckpt);
        if let Some((CrashPoint::MidCheckpoint, seed)) = sim {
            let bytes = out.as_bytes();
            let keep = (seed as usize) % bytes.len().max(1);
            let _ = std::fs::write(&tmp, &bytes[..keep]);
            return Err(JournalError::SimulatedCrash(CrashPoint::MidCheckpoint));
        }
        let write_tmp = || -> io::Result<()> {
            let mut f = File::create(&tmp)?;
            f.write_all(out.as_bytes())?;
            f.sync_all()
        };
        write_tmp().map_err(io_err)?;
        if let Some((CrashPoint::PostCheckpointFsyncPreRename, _)) = sim {
            return Err(JournalError::SimulatedCrash(
                CrashPoint::PostCheckpointFsyncPreRename,
            ));
        }
        std::fs::rename(&tmp, &ckpt).map_err(io_err)?;
        if let Some((CrashPoint::PostRenamePreTruncate, _)) = sim {
            return Err(JournalError::SimulatedCrash(CrashPoint::PostRenamePreTruncate));
        }
        let journal_path = self.dir.join(JOURNAL_FILE);
        framing::atomic_write(&journal_path, format!("{JOURNAL_HEADER}\n").as_bytes())
            .map_err(io_err)?;
        // The rename replaced the inode the old handle pointed at.
        self.file = OpenOptions::new()
            .append(true)
            .open(&journal_path)
            .map_err(io_err)?;
        self.appends_since_checkpoint = 0;
        self.recorder.add(names::JOURNAL_CHECKPOINTS, 1);
        Ok(())
    }
}

/// A checkpoint read back from disk: the first frame sequence it does not
/// cover, plus its verified payload.
pub(crate) struct LoadedCheckpoint {
    pub(crate) next_seq: u64,
    pub(crate) payload: String,
}

/// One verified journal frame.
pub(crate) struct LoadedFrame {
    pub(crate) seq: u64,
    pub(crate) kind: String,
    pub(crate) payload: String,
}

/// The journal's readable prefix plus salvage bookkeeping.
#[derive(Default)]
pub(crate) struct LoadedJournal {
    pub(crate) frames: Vec<LoadedFrame>,
    pub(crate) salvaged: u64,
    pub(crate) truncated_tail: bool,
    pub(crate) incidents: Vec<RecoveryIncident>,
}

/// Removes leftover temp files from writes that crashed before their
/// rename; returns how many were removed.
pub(crate) fn clean_orphan_temps(dir: &Path) -> io::Result<u64> {
    let mut removed = 0;
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with(&format!("{CHECKPOINT_FILE}.tmp."))
            || name.starts_with(&format!("{JOURNAL_FILE}.tmp."))
        {
            std::fs::remove_file(entry.path())?;
            removed += 1;
        }
    }
    Ok(removed)
}

/// Loads and verifies the checkpoint, if one was ever published.
///
/// # Errors
///
/// [`JournalError::Corrupt`] when a published checkpoint fails validation —
/// checkpoints are written atomically, so damage here is real disk rot,
/// not a crash artifact, and recovery must not guess around it.
pub(crate) fn load_checkpoint(dir: &Path) -> Result<Option<LoadedCheckpoint>, JournalError> {
    let path = dir.join(CHECKPOINT_FILE);
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(io_err(e)),
    };
    let corrupt = |m: &str| JournalError::Corrupt(format!("checkpoint: {m}"));
    let (line, pos) = framing::byte_line(&bytes, 0);
    if line != CHECKPOINT_HEADER.as_bytes() {
        return Err(corrupt("bad header"));
    }
    let (line, pos) = framing::byte_line(&bytes, pos);
    let header = framing::parse_frame_header(line, "state").map_err(|e| corrupt(&e))?;
    if header.fields.len() != 1 {
        return Err(corrupt("state frame needs exactly one next-seq field"));
    }
    let next_seq = header.fields[0]
        .parse::<u64>()
        .map_err(|_| corrupt("bad next-seq"))?;
    let (payload, resume) =
        framing::check_frame(&bytes, &header, pos).map_err(|(_, e)| corrupt(&e))?;
    if resume != bytes.len() {
        return Err(corrupt("trailing bytes after state frame"));
    }
    Ok(Some(LoadedCheckpoint {
        next_seq,
        payload: payload.to_owned(),
    }))
}

/// Scans the journal, yielding every verified frame up to the first torn or
/// corrupt one (which, with everything after it, is reported as salvaged —
/// an append-only writer cannot have valid frames beyond a torn one).
///
/// # Errors
///
/// [`JournalError::Corrupt`] when the journal header itself is damaged
/// (it is published atomically at creation, so this is disk rot).
pub(crate) fn load_journal(dir: &Path) -> Result<LoadedJournal, JournalError> {
    let path = dir.join(JOURNAL_FILE);
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(LoadedJournal::default()),
        Err(e) => return Err(io_err(e)),
    };
    let (line, mut pos) = framing::byte_line(&bytes, 0);
    if line != JOURNAL_HEADER.as_bytes() {
        return Err(JournalError::Corrupt("journal: bad header".to_owned()));
    }
    let mut out = LoadedJournal::default();
    while pos < bytes.len() {
        let (line, payload_start) = framing::byte_line(&bytes, pos);
        let frame = framing::parse_frame_header(line, "frame")
            .and_then(|header| {
                if header.fields.len() != 2 {
                    return Err("frame header needs seq and kind".to_owned());
                }
                let seq = header.fields[0]
                    .parse::<u64>()
                    .map_err(|_| "bad frame seq".to_owned())?;
                if let Some(prev) = out.frames.last() {
                    if seq != prev.seq + 1 {
                        return Err(format!(
                            "frame seq {seq} breaks sequence after {}",
                            prev.seq
                        ));
                    }
                }
                Ok((seq, header))
            })
            .and_then(|(seq, header)| {
                let (payload, resume) = framing::check_frame(&bytes, &header, payload_start)
                    .map_err(|(_, e)| e)?;
                Ok((
                    LoadedFrame {
                        seq,
                        kind: header.fields[1].clone(),
                        payload: payload.to_owned(),
                    },
                    resume,
                ))
            });
        match frame {
            Ok((frame, resume)) => {
                out.frames.push(frame);
                pos = resume;
            }
            Err(reason) => {
                // Append-only writing means nothing beyond the first bad
                // frame can be valid: salvage the whole tail as one frame.
                out.salvaged += 1;
                out.truncated_tail = true;
                out.incidents.push(RecoveryIncident::new(
                    SUBSYSTEM_JOURNAL,
                    format!(
                        "torn tail truncated at byte {pos} ({} trailing bytes): {reason}",
                        bytes.len() - pos
                    ),
                ));
                break;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    fn dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("udf-serve-journal-{name}"));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn append_load_round_trips() {
        let d = dir("round-trip");
        let mut j: Journal<Vec<i64>> =
            Journal::create(&d, None, udf_obs::RecorderCell::noop()).unwrap();
        j.append("sub", "batch 0 epoch 0 seq 0 n 1\nrec 1 2 3\n").unwrap();
        j.append("epoch", "epoch 1 mode idle processed 0 applied 0 errors 0 digest 0\n")
            .unwrap();
        let loaded = load_journal(&d).unwrap();
        assert_eq!(loaded.frames.len(), 2);
        assert_eq!(loaded.frames[0].kind, "sub");
        assert_eq!(loaded.frames[1].seq, 1);
        assert!(!loaded.truncated_tail);
    }

    #[test]
    fn checkpoint_covers_prefix_and_truncates() {
        let d = dir("checkpoint");
        let mut j: Journal<Vec<i64>> =
            Journal::create(&d, None, udf_obs::RecorderCell::noop()).unwrap();
        j.append("rej", "n 3\n").unwrap();
        j.checkpoint("epoch 0\n").unwrap();
        let ckpt = load_checkpoint(&d).unwrap().unwrap();
        assert_eq!(ckpt.next_seq, 1);
        assert_eq!(ckpt.payload, "epoch 0\n");
        assert!(load_journal(&d).unwrap().frames.is_empty(), "truncated");
        // Appends continue the global sequence after truncation.
        assert_eq!(j.append("rej", "n 1\n").unwrap(), 1);
    }

    #[test]
    fn torn_tail_is_salvaged_with_incident() {
        let d = dir("torn");
        let mut j: Journal<Vec<i64>> = Journal::create(
            &d,
            Some(SimCrash {
                point: CrashPoint::MidAppend,
                after: 2,
                seed: 41,
            }),
            udf_obs::RecorderCell::noop(),
        )
        .unwrap();
        j.append("rej", "n 1\n").unwrap();
        let err = j.append("rej", "n 2\n").unwrap_err();
        assert!(matches!(err, JournalError::SimulatedCrash(CrashPoint::MidAppend)));
        let loaded = load_journal(&d).unwrap();
        assert_eq!(loaded.frames.len(), 1, "intact prefix survives");
        assert!(loaded.truncated_tail);
        assert_eq!(loaded.salvaged, 1);
        assert_eq!(loaded.incidents[0].subsystem, "journal");
    }

    #[test]
    fn record_codecs_round_trip() {
        let v = vec![-3i64, 0, 99];
        assert_eq!(Vec::<i64>::decode_rec(&v.encode_rec()).unwrap(), v);
        let empty: Vec<i64> = Vec::new();
        assert_eq!(Vec::<i64>::decode_rec(&empty.encode_rec()).unwrap(), empty);
        let p = (7usize, vec![1i64, -2]);
        assert_eq!(<(usize, Vec<i64>)>::decode_rec(&p.encode_rec()).unwrap(), p);
        let bare = (3usize, Vec::<i64>::new());
        assert_eq!(<(usize, Vec<i64>)>::decode_rec(&bare.encode_rec()).unwrap(), bare);
    }
}
