//! Consolidation-as-a-service.
//!
//! A long-lived runtime over `naiad-lite` that keeps one shared
//! consolidated plan alive across query churn. Where the batch pipeline
//! consolidates a fixed query set once (PLDI'14 §5, Ω over all pairs), the
//! service must absorb *register/deregister at runtime* without paying a
//! full re-consolidation per op — and must keep tenants isolated when one
//! of them ships a hostile UDF.
//!
//! Three mechanisms, one module each:
//!
//! - **Delta consolidation** ([`consolidate::DeltaPlan`], driven from
//!   [`Service::register`] / [`Service::deregister`]): the merged plan is
//!   the root of a binary merge tree; adding or removing one query
//!   re-consolidates only the `O(log n)` spine above its leaf, reusing
//!   entailment verdicts from the plan's scoped memo.
//! - **Admission control & backpressure** ([`admission`]): a bounded
//!   ingest queue with explicit admit/reject decisions and deadline-aware
//!   shedding; pressure watermarks defer churn and degrade execution to
//!   the sequential reference semantics. Nothing is ever dropped silently:
//!   `admitted == processed + shed + queued` holds after every epoch.
//! - **Per-tenant isolation** ([`tenant`], [`Service::run_epoch`]): guard
//!   trips and quarantine overruns are attributed to the owning tenant,
//!   which is demoted alone — its queries leave the shared plan, its memo
//!   verdicts and tagged plan-cache entries are invalidated, and every
//!   other tenant's results are unchanged.
//!
//! The service is clocked by explicit [`Service::run_epoch`] calls, never
//! wall time, so seeded runs are byte-reproducible (chaos CI relies on
//! this).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod admission;
pub mod journal;
pub mod service;
pub mod tenant;

pub use admission::{Admission, RejectReason, ShedBatch};
pub use journal::{CrashPoint, JournalError, JournalRec, RecoveryReport, SimCrash};
pub use service::{
    Accounting, EpochMode, EpochReport, ServeConfig, ServeError, Service, ServiceStatus,
    TenantEpochReport,
};
pub use tenant::{ChurnOutcome, TenantId, TenantState};
