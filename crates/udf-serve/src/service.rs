//! The service runtime: epochs, admission, the live delta-consolidated
//! plan, and tenant-granular failure isolation.

use crate::admission::{Admission, IngestQueue, PendingBatch, ShedBatch};
use crate::journal::{self, Journal, JournalError, JournalRec, RecoveryReport, SimCrash};
use crate::tenant::{ChurnOp, ChurnOutcome, TenantId, TenantState};
use consolidate::{DegradationTier, DeltaError};
use naiad_lite::engine::{
    Engine, EngineConfig, EngineError, ErrorPolicy, ExecMode, JobReport, QuerySet, RetryPolicy,
};
use naiad_lite::guard::{GuardAction, GuardObservation, GuardPolicy, PlanIncident};
use naiad_lite::UdfEnv;
use plan_cache::{CachedPlan, PlanCache, PlanKey, PortableProgram};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::fmt;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;
use udf_lang::analysis::notify_ids;
use udf_lang::ast::{ProgId, Program};
use udf_lang::cost::{Cost, CostModel, FnCost};
use udf_lang::intern::{Interner, Symbol};
use udf_obs::names;

/// [`FnCost`] view of a [`UdfEnv`], so delta consolidation prices library
/// calls exactly as the engine will execute them.
struct EnvCost<'a, E: UdfEnv>(&'a E);

impl<E: UdfEnv> FnCost for EnvCost<'_, E> {
    fn fn_cost(&self, f: Symbol) -> Cost {
        self.0.fn_cost(f)
    }
}

/// Service configuration. Watermarks are queue-pressure fractions
/// (`queued records / queue_capacity`); time is measured in epochs, never
/// wall clock, so every run with the same inputs reproduces exactly.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bounded ingest capacity in records; submissions that would exceed it
    /// are rejected (never silently dropped).
    pub queue_capacity: usize,
    /// Records processed per epoch (batches are atomic: the first queued
    /// batch always runs, even when it alone exceeds the limit).
    pub epoch_batch_limit: usize,
    /// Pressure at or above which the service degrades: churn is deferred
    /// and the epoch executes sequentially (per-tenant `Many` runs — the
    /// reference semantics, no guard overhead, no solver work).
    pub degrade_watermark: f64,
    /// Pressure at or above which batches older than
    /// [`ServeConfig::deadline_epochs`] are shed (explicitly accounted in
    /// the epoch report).
    pub shed_watermark: f64,
    /// Batch age (in epochs) beyond which it is sheddable under pressure.
    pub deadline_epochs: u64,
    /// Plan-guard sampling for consolidated epochs. The action is forced to
    /// [`GuardAction::FailFast`] internally: the service handles demotion
    /// itself at tenant granularity instead of the engine's job granularity.
    pub guard: GuardPolicy,
    /// Transient-fault retry policy forwarded to the engine.
    pub retry: RetryPolicy,
    /// Quarantined records attributed to one tenant before it is demoted
    /// out of the shared plan.
    pub tenant_quarantine_budget: u64,
    /// Consolidation options for delta plan surgery (its budget bounds each
    /// register/deregister operation).
    pub consolidation: consolidate::Options,
    /// Shared plan cache; delta plans are stored tagged per tenant so a
    /// demotion evicts exactly that tenant's plans.
    pub plan_cache: Option<Arc<PlanCache>>,
    /// Engine worker threads per epoch run.
    pub workers: usize,
    /// Execution backend for epoch runs (per-record reference interpreter
    /// or columnar record batches); also part of the plan-cache key so
    /// cached plans never cross backends.
    pub backend: naiad_lite::engine::ExecBackend,
    /// Metrics sink for the `serve.*` counters (and, shared with
    /// `consolidation.recorder`, the whole stack's).
    pub recorder: udf_obs::RecorderCell,
    /// Journal frames appended between checkpoint compactions (journaled
    /// services only; see [`Service::open`]). After this many frames the
    /// next epoch commit folds the journal into a full-state checkpoint.
    pub journal_checkpoint_every: u64,
    /// Armed simulated crash for chaos testing (journaled services only).
    /// When the chosen [`crate::CrashPoint`] fires, the journal performs
    /// the partial write a real crash could leave and the service poisons
    /// itself; recover from the directory to continue.
    pub sim_crash: Option<SimCrash>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            queue_capacity: 4096,
            epoch_batch_limit: 1024,
            degrade_watermark: 0.75,
            shed_watermark: 0.90,
            deadline_epochs: 4,
            guard: GuardPolicy::audit_all(),
            retry: RetryPolicy::default(),
            tenant_quarantine_budget: 16,
            consolidation: consolidate::Options::default(),
            plan_cache: None,
            workers: 1,
            backend: naiad_lite::engine::ExecBackend::default(),
            recorder: udf_obs::RecorderCell::noop(),
            journal_checkpoint_every: 64,
            sim_crash: None,
        }
    }
}

/// Errors surfaced by service operations.
#[derive(Debug, Clone)]
pub enum ServeError {
    /// A query with this id is already registered (ids are service-global).
    DuplicateQuery(ProgId),
    /// No registered query has this id.
    UnknownQuery(ProgId),
    /// The query exists but belongs to a different tenant.
    NotOwner {
        /// The calling tenant.
        tenant: TenantId,
        /// The contested query.
        query: ProgId,
    },
    /// The program notifies an id other than (or besides) its own.
    MultiNotify(ProgId),
    /// Delta plan surgery failed (e.g. parameter mismatch with the live
    /// set); the plan is unchanged.
    Delta(DeltaError),
    /// A program failed to compile for execution.
    Compile(String),
    /// The engine failed in a way the quarantine policy cannot absorb.
    Engine(String),
    /// The zero-silent-drop invariant `admitted == processed + shed +
    /// queued` broke — checked (in release builds too) before every epoch
    /// commit, because a service that silently miscounts is exactly the
    /// failure durability must not journal as truth.
    AccountingDrift(Accounting),
    /// The durability layer failed (I/O, corruption, or a simulated
    /// crash); the service is poisoned.
    Journal(JournalError),
    /// A call on a service already poisoned by a journal failure. Treat
    /// the in-memory instance as dead and [`Service::recover`] from disk.
    Poisoned,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::DuplicateQuery(id) => write!(f, "query id {} already registered", id.0),
            ServeError::UnknownQuery(id) => write!(f, "no registered query with id {}", id.0),
            ServeError::NotOwner { tenant, query } => {
                write!(f, "{tenant} does not own query {}", query.0)
            }
            ServeError::MultiNotify(id) => write!(
                f,
                "program must notify exactly its own id {} (and nothing else)",
                id.0
            ),
            ServeError::Delta(e) => write!(f, "delta consolidation: {e}"),
            ServeError::Compile(e) => write!(f, "compile: {e}"),
            ServeError::Engine(e) => write!(f, "engine: {e}"),
            ServeError::AccountingDrift(a) => write!(
                f,
                "accounting drift: admitted {} != processed {} + shed {} + queued {}",
                a.admitted, a.processed, a.shed, a.queued
            ),
            ServeError::Journal(e) => write!(f, "{e}"),
            ServeError::Poisoned => {
                write!(f, "service poisoned by an earlier journal failure; recover from disk")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<DeltaError> for ServeError {
    fn from(e: DeltaError) -> ServeError {
        ServeError::Delta(e)
    }
}

impl From<naiad_lite::CompileError> for ServeError {
    fn from(e: naiad_lite::CompileError) -> ServeError {
        ServeError::Compile(e.to_string())
    }
}

impl From<JournalError> for ServeError {
    fn from(e: JournalError) -> ServeError {
        ServeError::Journal(e)
    }
}

/// How one epoch executed its drained records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochMode {
    /// No records were queued.
    Idle,
    /// The shared consolidated plan ran (demoted tenants still ran solo).
    Consolidated,
    /// Every tenant ran solo and sequential: pressure at or above the
    /// degrade watermark, an unattributable guard trip, or an empty shared
    /// plan.
    Sequential,
}

/// One tenant's slice of an epoch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantEpochReport {
    /// Selected-record count per query id (`ProgId.0`), for every query the
    /// tenant had registered when the epoch ran.
    pub counts: BTreeMap<u32, u64>,
    /// Global record sequence numbers quarantined *for this tenant* (its
    /// own UDFs faulted on them), sorted.
    pub quarantined: Vec<u64>,
    /// Whether the tenant's queries ran outside the shared plan this epoch.
    pub solo: bool,
}

/// What one [`Service::run_epoch`] call did. Every drained record is
/// accounted here exactly once — in `processed` or inside `shed`.
#[derive(Debug, Clone)]
pub struct EpochReport {
    /// The epoch that ran (monotone from 1).
    pub epoch: u64,
    /// How the drained records executed.
    pub mode: EpochMode,
    /// Records fully processed this epoch.
    pub processed: usize,
    /// Batches shed by deadline-aware load shedding.
    pub shed: Vec<ShedBatch>,
    /// Deferred churn ops applied at this epoch's start.
    pub applied_churn: usize,
    /// Churn ops still deferred (pressure at or above the degrade
    /// watermark).
    pub deferred_churn: usize,
    /// Deferred churn ops that failed at apply time, with their errors.
    pub churn_errors: Vec<(TenantId, ServeError)>,
    /// Tenants demoted out of the shared plan during this epoch.
    pub demoted: Vec<TenantId>,
    /// Per-tenant results.
    pub tenants: BTreeMap<TenantId, TenantEpochReport>,
    /// Records still queued when the epoch ended.
    pub queued_after: usize,
    /// Tier of the shared plan after the epoch.
    pub plan_tier: DegradationTier,
    /// FNV-64 digest of the epoch's observable effects (mode, per-tenant
    /// counts and quarantined sequences, demotions, shed batches). The
    /// journal stamps this into the commit frame; the chaos CI diffs a
    /// recovered run's digests against the uncrashed reference.
    pub output_digest: u64,
}

/// Monotone service-lifetime record accounting. The zero-silent-drop
/// invariant is `admitted == processed + shed + queued` — checked after
/// every epoch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Accounting {
    /// Records accepted into the queue.
    pub admitted: u64,
    /// Records refused at admission (returned to the submitter).
    pub rejected: u64,
    /// Records shed after admission (reported per batch).
    pub shed: u64,
    /// Records fully processed.
    pub processed: u64,
    /// Records currently queued.
    pub queued: u64,
}

impl Accounting {
    /// Whether every admitted record is accounted for.
    pub fn balanced(&self) -> bool {
        self.admitted == self.processed + self.shed + self.queued
    }
}

/// Point-in-time view of the service.
#[derive(Debug, Clone, Copy)]
pub struct ServiceStatus {
    /// Epochs executed so far.
    pub epoch: u64,
    /// Records queued.
    pub queued_records: usize,
    /// Queue pressure (`queued / capacity`).
    pub pressure: f64,
    /// Queries in the shared consolidated plan.
    pub plan_queries: usize,
    /// Tier of the shared plan.
    pub plan_tier: DegradationTier,
    /// Registered tenants.
    pub tenants: usize,
    /// Tenants demoted out of the shared plan.
    pub demoted_tenants: usize,
}

/// A long-lived consolidation service over one dataset environment.
///
/// Drive it explicitly: [`Service::submit`] record batches,
/// [`Service::register`] / [`Service::deregister`] queries per tenant, and
/// call [`Service::run_epoch`] to make progress. Epochs — not wall-clock
/// time — are the service's only clock, which is what makes every seeded
/// run byte-reproducible (the chaos CI diffs two same-seed runs).
pub struct Service<E: UdfEnv> {
    env: E,
    interner: Interner,
    cm: CostModel,
    config: ServeConfig,
    plan: consolidate::DeltaPlan,
    tenants: BTreeMap<TenantId, TenantState>,
    owner: HashMap<u32, TenantId>,
    pending_churn: VecDeque<ChurnOp>,
    queue: IngestQueue<E::Rec>,
    epoch: u64,
    shared_qs: Option<QuerySet>,
    /// Pre-filter synthesized for the *current* shared plan (see
    /// [`consolidate::prefilter`]). Cleared on every churn — a condition
    /// proved against yesterday's query set says nothing about today's —
    /// and re-synthesized by [`Service::rebuild_shared`] when
    /// `consolidation.prefilter` is on.
    shared_prefilter: Option<consolidate::Prefilter>,
    qs_dirty: bool,
    counters: Accounting,
    /// Full add/remove history of the shared plan. [`consolidate::DeltaPlan`]'s
    /// tree shape (free-slot reuse, grow relabeling, rename counters) is a
    /// function of the whole history, not the surviving membership — so
    /// checkpoints persist this history and recovery replays it to rebuild
    /// a bit-identical plan.
    plan_ops: Vec<PlanOp>,
    journal: Option<Journal<E::Rec>>,
    poisoned: bool,
}

/// One plan-surgery operation, kept for bit-identical plan rebuild.
enum PlanOp {
    Add(Program),
    Remove(ProgId),
}

impl<E: UdfEnv> fmt::Debug for Service<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Service").field("status", &self.status()).finish()
    }
}

impl<E: UdfEnv> Service<E> {
    /// Creates a service over `env` with its own interner and cost model.
    pub fn new(env: E, config: ServeConfig) -> Service<E> {
        let queue = IngestQueue::new(config.queue_capacity);
        Service {
            env,
            interner: Interner::new(),
            cm: CostModel::default(),
            config,
            plan: consolidate::DeltaPlan::new(),
            tenants: BTreeMap::new(),
            owner: HashMap::new(),
            pending_churn: VecDeque::new(),
            queue,
            epoch: 0,
            shared_qs: None,
            shared_prefilter: None,
            qs_dirty: false,
            counters: Accounting::default(),
            plan_ops: Vec::new(),
            journal: None,
            poisoned: false,
        }
    }

    /// Creates a *journaled* service whose durable state lives in `dir`:
    /// every state transition appends a write-ahead frame before the call
    /// returns, and epoch commits periodically fold the journal into a
    /// checkpoint (see [`ServeConfig::journal_checkpoint_every`]). The
    /// directory must not already hold durable state — restart an existing
    /// service with [`Service::recover`] instead.
    ///
    /// `interner` must be the interner the environment's function library
    /// was built against (the same one [`Service::interner_mut`] would
    /// hand out) — recovery parses checkpointed programs into it, so
    /// library symbols must already resolve.
    ///
    /// # Errors
    ///
    /// [`ServeError::Journal`] when the directory already has a journal or
    /// checkpoint, or on I/O failure creating the journal.
    pub fn open(
        env: E,
        interner: Interner,
        config: ServeConfig,
        dir: &Path,
    ) -> Result<Service<E>, ServeError>
    where
        E::Rec: JournalRec,
    {
        let sim = config.sim_crash;
        let recorder = config.recorder.clone();
        let mut svc = Service::new(env, config);
        svc.interner = interner;
        svc.journal = Some(Journal::create(dir, sim, recorder)?);
        Ok(svc)
    }

    /// Rebuilds a journaled service from `dir`: orphan temp files are
    /// removed, the checkpoint (if any) is restored, the journal tail is
    /// replayed with exactly-once semantics (frames the checkpoint already
    /// covers are skipped), a torn tail is truncated and reported, and a
    /// fresh checkpoint is published so the recovered state is durable
    /// before the first new operation. The result is bit-identical to the
    /// uncrashed service: same tenants, queue, pending churn, accounting,
    /// plan shape, and next-epoch behavior.
    ///
    /// # Errors
    ///
    /// [`ServeError::Journal`] on I/O failure or when an atomically
    /// published artifact (checkpoint, journal header) is corrupt — torn
    /// *tails* are salvaged, but rot in state that was durably acknowledged
    /// must not be guessed around.
    pub fn recover(
        env: E,
        interner: Interner,
        config: ServeConfig,
        dir: &Path,
    ) -> Result<(Service<E>, RecoveryReport), ServeError>
    where
        E::Rec: JournalRec,
    {
        journal::clean_orphan_temps(dir)
            .map_err(|e| JournalError::Io(e.to_string()))?;
        let sim = config.sim_crash;
        let recorder = config.recorder.clone();
        let mut svc = Service::new(env, config);
        svc.interner = interner;
        let mut report = RecoveryReport::default();
        let mut next_seq = 0u64;
        if let Some(ckpt) = journal::load_checkpoint(dir)? {
            next_seq = ckpt.next_seq;
            svc.restore_checkpoint(&ckpt.payload)
                .map_err(|e| JournalError::Corrupt(format!("checkpoint: {e}")))?;
        }
        let loaded = journal::load_journal(dir)?;
        report.frames_salvaged = loaded.salvaged;
        report.truncated_tail = loaded.truncated_tail;
        report.incidents = loaded.incidents;
        for frame in &loaded.frames {
            if frame.seq < next_seq {
                report.frames_skipped += 1;
                continue;
            }
            if frame.seq != next_seq {
                return Err(ServeError::Journal(JournalError::Corrupt(format!(
                    "frame seq {} leaves a gap (expected {next_seq})",
                    frame.seq
                ))));
            }
            svc.replay_frame(frame, &mut report)
                .map_err(|e| JournalError::Corrupt(format!("frame {}: {e}", frame.seq)))?;
            next_seq = frame.seq + 1;
            report.frames_replayed += 1;
        }
        svc.journal = Some(Journal::resume(dir, next_seq, sim, recorder.clone())?);
        // Publish the recovered state before accepting new work: the torn
        // tail is folded away and a second crash re-recovers from here.
        svc.checkpoint()?;
        recorder.add(names::SERVE_RECOVERIES, 1);
        recorder.add(names::JOURNAL_FRAMES_REPLAYED, report.frames_replayed);
        recorder.add(names::JOURNAL_FRAMES_SKIPPED, report.frames_skipped);
        recorder.add(names::JOURNAL_FRAMES_SALVAGED, report.frames_salvaged);
        Ok((svc, report))
    }

    /// The interner programs submitted to this service must be parsed with.
    pub fn interner_mut(&mut self) -> &mut Interner {
        &mut self.interner
    }

    /// The dataset environment.
    pub fn env(&self) -> &E {
        &self.env
    }

    /// The active configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Current point-in-time view.
    pub fn status(&self) -> ServiceStatus {
        ServiceStatus {
            epoch: self.epoch,
            queued_records: self.queue.queued_records(),
            pressure: self.queue.pressure(),
            plan_queries: self.plan.len(),
            plan_tier: self.plan.tier(),
            tenants: self.tenants.len(),
            demoted_tenants: self.tenants.values().filter(|t| t.demoted).count(),
        }
    }

    /// Lifetime record accounting (see [`Accounting::balanced`]).
    pub fn accounting(&self) -> Accounting {
        Accounting {
            queued: self.queue.queued_records() as u64,
            ..self.counters
        }
    }

    /// A tenant's state, if registered.
    pub fn tenant(&self, tenant: TenantId) -> Option<&TenantState> {
        self.tenants.get(&tenant)
    }

    /// Offers a record batch to the bounded ingest queue. An
    /// [`Admission::Rejected`] batch never enters the service — the caller
    /// keeps the records and the decision is explicit. On a journaled
    /// service the admission decision (batch contents included) is durable
    /// before this returns.
    ///
    /// # Errors
    ///
    /// [`ServeError::Journal`] when the write-ahead append fails (the
    /// service is then poisoned); [`ServeError::Poisoned`] thereafter.
    /// Non-journaled services never error.
    pub fn submit(&mut self, records: Vec<E::Rec>) -> Result<Admission, ServeError> {
        self.check_poisoned()?;
        let n = records.len() as u64;
        let admission = self.queue.offer(records, self.epoch);
        match &admission {
            Admission::Admitted { .. } => {
                self.counters.admitted += n;
                self.config.recorder.add(names::SERVE_ADMITTED, n);
            }
            Admission::Rejected { .. } => {
                self.counters.rejected += n;
                self.config.recorder.add(names::SERVE_REJECTED, n);
            }
        }
        if let Some(j) = &self.journal {
            let enc = j.encode;
            let (kind, payload) = match &admission {
                Admission::Admitted { .. } => {
                    let b = self.queue.back().expect("batch was just admitted");
                    let mut p = format!(
                        "batch {} epoch {} seq {} n {}\n",
                        b.id,
                        b.submitted_epoch,
                        b.start_seq,
                        b.records.len()
                    );
                    for r in &b.records {
                        let _ = writeln!(p, "rec {}", enc(r));
                    }
                    ("sub", p)
                }
                Admission::Rejected { .. } => ("rej", format!("n {n}\n")),
            };
            self.journal_append(kind, &payload)?;
        }
        Ok(admission)
    }

    /// Registers one query for `tenant` (created on first use). Under calm
    /// pressure the shared plan is updated in place by a delta operation —
    /// only the `O(log n)` spine above the new leaf re-consolidates; below
    /// the degrade watermark nothing else is touched. Under pressure the op
    /// is deferred to the next calm epoch.
    ///
    /// # Errors
    ///
    /// [`ServeError::DuplicateQuery`] / [`ServeError::MultiNotify`] for
    /// malformed registrations; [`ServeError::Delta`] when plan surgery
    /// fails (the plan is rolled back); [`ServeError::Compile`] when the
    /// program does not compile for execution.
    pub fn register(
        &mut self,
        tenant: TenantId,
        program: &Program,
    ) -> Result<ChurnOutcome, ServeError> {
        self.check_poisoned()?;
        if self.owner.contains_key(&program.id.0) || self.pending_register(program.id).is_some() {
            return Err(ServeError::DuplicateQuery(program.id));
        }
        let ids = notify_ids(&program.body);
        if ids.len() != 1 || !ids.contains(&program.id) {
            return Err(ServeError::MultiNotify(program.id));
        }
        // Compile now so malformed programs fail at the submission boundary,
        // not inside a later epoch.
        let fc = |f: Symbol| self.env.fn_cost(f);
        QuerySet::compile_many(std::slice::from_ref(program), &self.cm, &fc)?;
        let outcome = if self.queue.pressure() >= self.config.degrade_watermark {
            self.pending_churn.push_back(ChurnOp::Register {
                tenant,
                program: program.clone(),
            });
            ChurnOutcome::Deferred
        } else {
            self.apply_register(tenant, program)?
        };
        if self.journal.is_some() {
            let sexpr = PortableProgram::from_program(program, &self.interner).to_sexpr();
            let payload =
                format!("tenant {} outcome {}\n{sexpr}\n", tenant.0, churn_tag(&outcome));
            self.journal_append("reg", &payload)?;
        }
        Ok(outcome)
    }

    /// Deregisters one of `tenant`'s queries. Calm epochs apply the removal
    /// immediately (spine-only re-consolidation); under pressure it is
    /// deferred like a registration.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownQuery`] / [`ServeError::NotOwner`] for bad
    /// handles; [`ServeError::Delta`] when plan surgery fails.
    pub fn deregister(
        &mut self,
        tenant: TenantId,
        query: ProgId,
    ) -> Result<ChurnOutcome, ServeError> {
        self.check_poisoned()?;
        let outcome = 'outcome: {
            match self.owner.get(&query.0) {
                None => {
                    // A still-deferred registration can be withdrawn before
                    // it ever reaches the plan.
                    let Some(at) = self.pending_register(query) else {
                        return Err(ServeError::UnknownQuery(query));
                    };
                    match &self.pending_churn[at] {
                        ChurnOp::Register { tenant: t, .. } if *t != tenant => {
                            return Err(ServeError::NotOwner { tenant, query });
                        }
                        _ => {}
                    }
                    self.pending_churn.remove(at);
                    break 'outcome ChurnOutcome::Cancelled;
                }
                Some(t) if *t != tenant => {
                    return Err(ServeError::NotOwner { tenant, query });
                }
                Some(_) => {}
            }
            if self.queue.pressure() >= self.config.degrade_watermark {
                self.pending_churn
                    .push_back(ChurnOp::Deregister { tenant, query });
                break 'outcome ChurnOutcome::Deferred;
            }
            self.apply_deregister(tenant, query)?
        };
        if self.journal.is_some() {
            let payload = format!(
                "tenant {} query {} outcome {}\n",
                tenant.0,
                query.0,
                churn_tag(&outcome)
            );
            self.journal_append("dereg", &payload)?;
        }
        Ok(outcome)
    }

    /// Position of a still-pending registration of `query`, if any.
    fn pending_register(&self, query: ProgId) -> Option<usize> {
        self.pending_churn.iter().position(|op| {
            matches!(op, ChurnOp::Register { program, .. } if program.id == query)
        })
    }

    fn apply_register(
        &mut self,
        tenant: TenantId,
        program: &Program,
    ) -> Result<ChurnOutcome, ServeError> {
        if self.owner.contains_key(&program.id.0) {
            // Re-checked here because deferred ops apply later.
            return Err(ServeError::DuplicateQuery(program.id));
        }
        let demoted = self.tenants.get(&tenant).is_some_and(|t| t.demoted);
        let outcome = if demoted {
            ChurnOutcome::AppliedSolo
        } else {
            let report = self
                .plan
                .add(
                    program,
                    &mut self.interner,
                    &self.cm,
                    &EnvCost(&self.env),
                    &self.config.consolidation,
                )?;
            self.config.recorder.add(names::SERVE_DELTA_RECONSOLIDATIONS, 1);
            self.plan_ops.push(PlanOp::Add(program.clone()));
            ChurnOutcome::Applied(Box::new(report))
        };
        let state = self.tenants.entry(tenant).or_insert_with(TenantState::new);
        state.programs.push(program.clone());
        self.owner.insert(program.id.0, tenant);
        self.qs_dirty = true;
        // The old pre-filter was proved against the previous query set;
        // drop it now and let the next rebuild synthesize a fresh one.
        self.shared_prefilter = None;
        self.store_plan_in_cache();
        Ok(outcome)
    }

    fn apply_deregister(
        &mut self,
        tenant: TenantId,
        query: ProgId,
    ) -> Result<ChurnOutcome, ServeError> {
        match self.owner.get(&query.0) {
            None => return Err(ServeError::UnknownQuery(query)),
            Some(t) if *t != tenant => {
                return Err(ServeError::NotOwner { tenant, query });
            }
            Some(_) => {}
        }
        let outcome = if self.plan.contains(query) {
            let report = self.plan.remove(
                query,
                &self.interner,
                &self.cm,
                &EnvCost(&self.env),
                &self.config.consolidation,
            )?;
            self.config.recorder.add(names::SERVE_DELTA_RECONSOLIDATIONS, 1);
            self.plan_ops.push(PlanOp::Remove(query));
            ChurnOutcome::Applied(Box::new(report))
        } else {
            ChurnOutcome::AppliedSolo
        };
        if let Some(state) = self.tenants.get_mut(&tenant) {
            state.programs.retain(|p| p.id != query);
        }
        self.owner.remove(&query.0);
        self.qs_dirty = true;
        // The old pre-filter was proved against the previous query set;
        // drop it now and let the next rebuild synthesize a fresh one.
        self.shared_prefilter = None;
        self.store_plan_in_cache();
        Ok(outcome)
    }

    /// Stores the current shared plan in the attached cache, tagged with
    /// every owning tenant, under the tier-upgrade rule.
    fn store_plan_in_cache(&self) {
        let Some(cache) = &self.config.plan_cache else {
            return;
        };
        let Some(merged) = self.plan.program() else {
            return;
        };
        let programs = self.plan.programs();
        let key = PlanKey::derive(
            &programs,
            &self.interner,
            &self.config.consolidation,
            &self.cm,
            self.config.backend,
        );
        let mut portable = PortableProgram::from_program(merged, &self.interner);
        // A freshly-rebuilt pre-filter rides along so cache consumers with
        // the knob on rehydrate it; churn clears it before this runs, so a
        // stale condition can never be stored against a changed query set.
        if let Some(pf) = &self.shared_prefilter {
            portable.prefilter = Some(plan_cache::portable::PBool::from_bool(
                &pf.cond,
                &self.interner,
            ));
        }
        let stats = consolidate::ConsolidationStats {
            tier: self.plan.tier(),
            ..consolidate::ConsolidationStats::default()
        };
        let tags: Vec<u64> = programs
            .iter()
            .filter_map(|p| self.owner.get(&p.id.0))
            .map(|t| u64::from(t.0))
            .collect();
        cache.insert_upgrading(key, CachedPlan::new(portable, stats), &tags);
    }

    /// Removes `tenant`'s queries from the shared plan (delta removals),
    /// drops every entailment-memo verdict their predicates touched, and
    /// evicts the tenant's tagged plan-cache entries. Only this tenant's
    /// artifacts are invalidated — other tenants keep their plans, verdicts,
    /// and tiers.
    fn demote_tenant(&mut self, tenant: TenantId) -> Result<(), ServeError> {
        let ids = match self.tenants.get(&tenant) {
            Some(t) if !t.demoted => t.query_ids(),
            _ => return Ok(()),
        };
        let mut memo_dropped = 0usize;
        for id in ids {
            if self.plan.contains(id) {
                self.plan.remove(
                    id,
                    &self.interner,
                    &self.cm,
                    &EnvCost(&self.env),
                    &self.config.consolidation,
                )?;
                self.config.recorder.add(names::SERVE_DELTA_RECONSOLIDATIONS, 1);
                self.plan_ops.push(PlanOp::Remove(id));
            }
            memo_dropped += self.plan.memo().invalidate_query(id.0);
        }
        self.config
            .recorder
            .add(names::ENTAIL_MEMO_INVALIDATED, memo_dropped as u64);
        if let Some(cache) = &self.config.plan_cache {
            let evicted = cache.invalidate_tag(u64::from(tenant.0));
            self.config
                .recorder
                .add(names::PLAN_CACHE_TAG_INVALIDATED, evicted as u64);
        }
        if let Some(state) = self.tenants.get_mut(&tenant) {
            state.demoted = true;
        }
        self.config.recorder.add(names::SERVE_TENANT_DEMOTIONS, 1);
        self.qs_dirty = true;
        // The old pre-filter was proved against the previous query set;
        // drop it now and let the next rebuild synthesize a fresh one.
        self.shared_prefilter = None;
        self.store_plan_in_cache();
        Ok(())
    }

    /// Engine for one run. The quarantine ceiling is effectively unbounded:
    /// the service's own tenant budgets decide demotion, and a job abort
    /// would turn per-record faults into lost records.
    fn engine(&self, guard: GuardPolicy) -> Engine {
        Engine::new(self.config.workers).with_config(EngineConfig {
            error_policy: ErrorPolicy::Quarantine {
                max_errors: usize::MAX / 2,
            },
            retry: self.config.retry,
            guard,
            fuel: None,
            max_payload_samples: 0,
            plan_cache: self.config.plan_cache.clone(),
            entailment_memo: Some(Arc::clone(self.plan.memo())),
            backend: self.config.backend,
            recorder: self.config.recorder.clone(),
        })
    }

    /// Rebuilds the shared query set from the plan when dirty. When
    /// `consolidation.prefilter` is on, a fresh pre-filter is synthesized
    /// and verified against the *current* plan (churn invalidated the old
    /// one) and the enriched plan is re-stored in the cache; a rejected
    /// synthesis simply leaves the set unfiltered — fail-open.
    fn rebuild_shared(&mut self) -> Result<(), ServeError> {
        if !self.qs_dirty {
            return Ok(());
        }
        let programs = self.plan.programs();
        let merged = self.plan.program().cloned();
        self.shared_qs = match (programs.is_empty(), merged) {
            (false, Some(merged)) => {
                let fc = |f: Symbol| self.env.fn_cost(f);
                let mut qs = QuerySet::compile_many(&programs, &self.cm, &fc)?
                    .with_consolidated(&merged, &self.cm, &fc, Duration::ZERO)?;
                if self.config.consolidation.prefilter {
                    self.shared_prefilter = consolidate::prefilter::synthesize(
                        &programs,
                        &merged,
                        &self.interner,
                        &self.cm,
                        &EnvCost(&self.env),
                        &self.config.consolidation,
                    )
                    .ok();
                    if let Some(pf) = &self.shared_prefilter {
                        qs = qs.with_prefilter(&pf.cond, &merged, &self.cm, &fc)?;
                    }
                }
                Some(qs)
            }
            _ => None,
        };
        self.qs_dirty = false;
        if self.shared_prefilter.is_some() {
            self.store_plan_in_cache();
        }
        Ok(())
    }

    /// The pre-filter protecting the current shared plan, if one survived
    /// synthesis for the *rebuilt* query set (`None` while churn is pending
    /// a rebuild, when the knob is off, or when every candidate was
    /// rejected).
    pub fn prefilter(&self) -> Option<&consolidate::Prefilter> {
        self.shared_prefilter.as_ref()
    }

    /// Compiles one tenant's programs for solo (sequential) execution.
    fn solo_queryset(&self, state: &TenantState) -> Result<QuerySet, ServeError> {
        let fc = |f: Symbol| self.env.fn_cost(f);
        Ok(QuerySet::compile_many(&state.programs, &self.cm, &fc)?)
    }

    /// Runs one tenant solo over `records`, merging counts and per-tenant
    /// quarantine into `out`.
    fn run_solo(
        &self,
        state: &TenantState,
        records: &[E::Rec],
        seqs: &[u64],
        out: &mut TenantEpochReport,
    ) -> Result<(), ServeError> {
        if state.programs.is_empty() {
            return Ok(());
        }
        let qs = self.solo_queryset(state)?;
        let engine = self.engine(GuardPolicy::default());
        let job = engine
            .run(&self.env, records, &qs, ExecMode::Many, false)
            .map_err(|e| ServeError::Engine(e.to_string()))?;
        for (idx, pid) in qs.query_ids.iter().enumerate() {
            *out.counts.entry(pid.0).or_insert(0) += job.counts[idx];
        }
        for entry in &job.quarantine.entries {
            out.quarantined.push(seqs[entry.record]);
        }
        Ok(())
    }

    /// Distributes a consolidated run's results per tenant. Quarantined
    /// records (the consolidated program evaluates all queries at once, so
    /// the engine cannot attribute them) are re-run per tenant solo: each
    /// tenant's outcome on those records then depends only on its own
    /// queries — one tenant's faulting UDF never erases another tenant's
    /// notifications.
    fn distribute_consolidated(
        &self,
        job: &JobReport,
        query_ids: &[ProgId],
        records: &[E::Rec],
        seqs: &[u64],
        out: &mut BTreeMap<TenantId, TenantEpochReport>,
    ) -> Result<(), ServeError> {
        for (idx, pid) in query_ids.iter().enumerate() {
            if let Some(t) = self.owner.get(&pid.0) {
                if let Some(rep) = out.get_mut(t) {
                    rep.counts.insert(pid.0, job.counts[idx]);
                }
            }
        }
        for rec in job.quarantine.records() {
            for (tenant, state) in &self.tenants {
                if state.demoted || state.programs.is_empty() {
                    continue; // demoted tenants run solo over the whole batch
                }
                if let Some(rep) = out.get_mut(tenant) {
                    self.run_solo(
                        state,
                        &records[rec..=rec],
                        &seqs[rec..=rec],
                        rep,
                    )?;
                }
            }
        }
        Ok(())
    }

    /// Maps a guard incident to the tenants whose UDFs caused it.
    ///
    /// Broadcast-side divergences name the query index directly. Fault-side
    /// divergences (one path quarantined) are attributed by re-running each
    /// tenant's queries solo on the divergent record: tenants whose own
    /// UDFs fault there are the culprits. An empty result means the
    /// incident could not be pinned on anyone — the caller then degrades
    /// the whole epoch to sequential execution instead of demoting blindly.
    fn attribute(
        &self,
        incident: &PlanIncident,
        records: &[E::Rec],
        query_ids: &[ProgId],
    ) -> BTreeSet<TenantId> {
        let mut culprits = BTreeSet::new();
        for m in &incident.examples {
            match (&m.consolidated, &m.sequential) {
                (GuardObservation::Notified(a), GuardObservation::Notified(b)) => {
                    for i in 0..a.len().min(b.len()) {
                        if a[i] != b[i] {
                            if let Some(pid) = query_ids.get(i) {
                                if let Some(t) = self.owner.get(&pid.0) {
                                    culprits.insert(*t);
                                }
                            }
                        }
                    }
                }
                _ => {
                    let Some(rec) = records.get(m.record) else {
                        continue;
                    };
                    for (tenant, state) in &self.tenants {
                        if state.demoted || state.programs.is_empty() {
                            continue;
                        }
                        let Ok(qs) = self.solo_queryset(state) else {
                            continue;
                        };
                        let engine = self.engine(GuardPolicy::default());
                        if let Ok(job) = engine.run(
                            &self.env,
                            std::slice::from_ref(rec),
                            &qs,
                            ExecMode::Many,
                            false,
                        ) {
                            if job.quarantine.records_quarantined > 0 {
                                culprits.insert(*tenant);
                            }
                        }
                    }
                }
            }
        }
        culprits
    }

    /// Executes one epoch: apply (or defer) churn, shed expired batches
    /// under pressure, drain up to the epoch limit, and run the drained
    /// records — consolidated when calm, per-tenant sequential when
    /// pressured or when the shared plan cannot be trusted this epoch.
    ///
    /// # Errors
    ///
    /// Propagates compile/engine failures; per-record faults and guard
    /// trips are absorbed (quarantine accounting, tenant demotion) rather
    /// than erroring.
    pub fn run_epoch(&mut self) -> Result<EpochReport, ServeError> {
        self.check_poisoned()?;
        self.epoch += 1;
        self.config.recorder.add(names::SERVE_EPOCHS, 1);
        let pressure = self.queue.pressure();
        let mut report = EpochReport {
            epoch: self.epoch,
            mode: EpochMode::Idle,
            processed: 0,
            shed: Vec::new(),
            applied_churn: 0,
            deferred_churn: 0,
            churn_errors: Vec::new(),
            demoted: Vec::new(),
            tenants: BTreeMap::new(),
            queued_after: 0,
            plan_tier: self.plan.tier(),
            output_digest: 0,
        };
        if pressure < self.config.degrade_watermark {
            while let Some(op) = self.pending_churn.pop_front() {
                let (tenant, result) = match op {
                    ChurnOp::Register { tenant, program } => {
                        (tenant, self.apply_register(tenant, &program).map(|_| ()))
                    }
                    ChurnOp::Deregister { tenant, query } => {
                        (tenant, self.apply_deregister(tenant, query).map(|_| ()))
                    }
                };
                match result {
                    Ok(()) => report.applied_churn += 1,
                    Err(e) => report.churn_errors.push((tenant, e)),
                }
            }
        } else {
            report.deferred_churn = self.pending_churn.len();
        }
        if pressure >= self.config.shed_watermark {
            for (shed, records) in self
                .queue
                .shed_expired(self.epoch, self.config.deadline_epochs)
            {
                self.counters.shed += records.len() as u64;
                self.config
                    .recorder
                    .add(names::SERVE_SHED, records.len() as u64);
                report.shed.push(shed);
                drop(records);
            }
        }
        let batches = self.queue.drain_up_to(self.config.epoch_batch_limit);
        let mut records: Vec<E::Rec> = Vec::new();
        let mut seqs: Vec<u64> = Vec::new();
        for b in batches {
            let start = b.start_seq;
            for (i, r) in b.records.into_iter().enumerate() {
                seqs.push(start + i as u64);
                records.push(r);
            }
        }
        if records.is_empty() {
            report.queued_after = self.queue.queued_records();
            report.plan_tier = self.plan.tier();
            self.commit_epoch(&mut report)?;
            return Ok(report);
        }
        // Seed every owning tenant's report with zeroed counts so the shape
        // is identical whichever path fills it.
        for (tenant, state) in &self.tenants {
            if state.programs.is_empty() {
                continue;
            }
            let mut rep = TenantEpochReport {
                solo: state.demoted,
                ..TenantEpochReport::default()
            };
            for p in &state.programs {
                rep.counts.insert(p.id.0, 0);
            }
            report.tenants.insert(*tenant, rep);
        }
        let mut sequential_epoch = pressure >= self.config.degrade_watermark;
        let mut consolidated_ran = false;
        if !sequential_epoch {
            // Consolidated attempt loop: a guard trip demotes the culprit
            // tenants and retries with the reduced plan. Bounded by the
            // tenant count; an unattributable trip degrades the epoch.
            loop {
                if self.plan.is_empty() {
                    break;
                }
                self.rebuild_shared()?;
                let Some(query_ids) = self.shared_qs.as_ref().map(|q| q.query_ids.clone())
                else {
                    break;
                };
                let guard = GuardPolicy {
                    on_mismatch: GuardAction::FailFast,
                    ..self.config.guard
                };
                let engine = self.engine(guard);
                let outcome = {
                    let Some(qs) = self.shared_qs.as_ref() else {
                        break;
                    };
                    engine.run(&self.env, &records, qs, ExecMode::Consolidated, false)
                };
                match outcome {
                    Ok(job) => {
                        self.distribute_consolidated(
                            &job,
                            &query_ids,
                            &records,
                            &seqs,
                            &mut report.tenants,
                        )?;
                        consolidated_ran = true;
                        break;
                    }
                    Err(EngineError::GuardTripped { incident }) => {
                        let culprits = self.attribute(&incident, &records, &query_ids);
                        if culprits.is_empty() {
                            sequential_epoch = true;
                            break;
                        }
                        for t in culprits {
                            self.demote_tenant(t)?;
                            report.demoted.push(t);
                            if let Some(rep) = report.tenants.get_mut(&t) {
                                rep.solo = true;
                            }
                        }
                    }
                    Err(e) => {
                        // Fail-soft: fall back to the reference semantics
                        // rather than losing the epoch's records.
                        report
                            .churn_errors
                            .push((TenantId(u32::MAX), ServeError::Engine(e.to_string())));
                        sequential_epoch = true;
                        break;
                    }
                }
            }
        }
        // Solo passes: demoted tenants always; every tenant when the epoch
        // degraded to sequential.
        for (tenant, state) in &self.tenants {
            if state.programs.is_empty() {
                continue;
            }
            let in_shared = !state.demoted && consolidated_ran;
            if in_shared && !sequential_epoch {
                continue;
            }
            if let Some(rep) = report.tenants.get_mut(tenant) {
                rep.solo = true;
                self.run_solo(state, &records, &seqs, rep)?;
            }
        }
        // Tenant quarantine budgets: demote over-budget tenants so the next
        // epoch's shared plan excludes them.
        let mut over_budget: Vec<TenantId> = Vec::new();
        for (tenant, rep) in &mut report.tenants {
            rep.quarantined.sort_unstable();
            rep.quarantined.dedup();
            if let Some(state) = self.tenants.get_mut(tenant) {
                state.quarantined_records += rep.quarantined.len() as u64;
                if !state.demoted
                    && state.quarantined_records > self.config.tenant_quarantine_budget
                {
                    over_budget.push(*tenant);
                }
            }
        }
        for t in over_budget {
            self.demote_tenant(t)?;
            report.demoted.push(t);
        }
        report.mode = if consolidated_ran && !sequential_epoch {
            EpochMode::Consolidated
        } else {
            EpochMode::Sequential
        };
        report.processed = records.len();
        self.counters.processed += records.len() as u64;
        self.config
            .recorder
            .add(names::SERVE_PROCESSED, records.len() as u64);
        report.queued_after = self.queue.queued_records();
        report.plan_tier = self.plan.tier();
        self.commit_epoch(&mut report)?;
        Ok(report)
    }

    /// Seals one epoch: stamp the output digest, enforce the
    /// zero-silent-drop invariant (in release builds too — drift must
    /// never be journaled as truth), append the commit frame, and compact
    /// the journal when due.
    fn commit_epoch(&mut self, report: &mut EpochReport) -> Result<(), ServeError> {
        report.output_digest = epoch_digest(report);
        let acc = self.accounting();
        if !acc.balanced() {
            return Err(ServeError::AccountingDrift(acc));
        }
        if self.journal.is_some() {
            let mut payload = format!(
                "epoch {} mode {} processed {} applied {} errors {} digest {:016x}\n",
                report.epoch,
                mode_tag(report.mode),
                report.processed,
                report.applied_churn,
                report.churn_errors.len(),
                report.output_digest
            );
            for t in &report.demoted {
                let _ = writeln!(payload, "demote {}", t.0);
            }
            for (t, rep) in &report.tenants {
                if !rep.quarantined.is_empty() {
                    let _ = writeln!(payload, "tq {} {}", t.0, rep.quarantined.len());
                }
            }
            self.journal_append("epoch", &payload)?;
            let due = self
                .journal
                .as_ref()
                .is_some_and(|j| j.appends_since_checkpoint() >= self.config.journal_checkpoint_every);
            if due {
                self.checkpoint()?;
            }
        }
        Ok(())
    }

    /// Fails every call once the journal has failed: the in-memory state
    /// may be ahead of the durable state, so the instance must be treated
    /// as dead and rebuilt with [`Service::recover`].
    fn check_poisoned(&self) -> Result<(), ServeError> {
        if self.poisoned {
            Err(ServeError::Poisoned)
        } else {
            Ok(())
        }
    }

    fn journal_append(&mut self, kind: &str, payload: &str) -> Result<(), ServeError> {
        let Some(j) = self.journal.as_mut() else {
            return Ok(());
        };
        match j.append(kind, payload) {
            Ok(_) => Ok(()),
            Err(e) => {
                self.poisoned = true;
                Err(ServeError::Journal(e))
            }
        }
    }

    /// Forces a checkpoint compaction now (journaled services only): the
    /// full service state is published atomically and the journal is
    /// truncated back to its header.
    ///
    /// # Errors
    ///
    /// [`ServeError::Journal`] on failure; the service is then poisoned.
    pub fn checkpoint(&mut self) -> Result<(), ServeError> {
        self.check_poisoned()?;
        if self.journal.is_none() {
            return Ok(());
        }
        let payload = self.checkpoint_payload();
        let Some(j) = self.journal.as_mut() else {
            return Ok(());
        };
        match j.checkpoint(&payload) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.poisoned = true;
                Err(ServeError::Journal(e))
            }
        }
    }

    /// Sequence number the next journal frame will carry — the count of
    /// durably acknowledged frames (monotone across truncations), or
    /// `None` for non-journaled services. Chaos harnesses use this to
    /// probe whether a crashed operation's frame landed.
    pub fn journal_seq(&self) -> Option<u64> {
        self.journal.as_ref().map(Journal::next_seq)
    }

    /// Whether a journal failure has poisoned this instance.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Renders the full-state checkpoint payload: epoch, counters, queue
    /// contents, tenants (programs in portable s-expression form), pending
    /// churn, and the complete plan-op history.
    fn checkpoint_payload(&self) -> String {
        let enc = self.journal.as_ref().expect("journaled").encode;
        let mut p = String::new();
        let _ = writeln!(p, "epoch {}", self.epoch);
        let _ = writeln!(
            p,
            "counters {} {} {} {}",
            self.counters.admitted, self.counters.rejected, self.counters.shed,
            self.counters.processed
        );
        let _ = writeln!(p, "queue {} {}", self.queue.next_batch(), self.queue.next_seq());
        for b in self.queue.batches() {
            let _ = writeln!(
                p,
                "batch {} {} {} {}",
                b.id,
                b.submitted_epoch,
                b.start_seq,
                b.records.len()
            );
            for r in &b.records {
                let _ = writeln!(p, "rec {}", enc(r));
            }
        }
        for (id, st) in &self.tenants {
            let _ = writeln!(
                p,
                "tenant {} {} {} {}",
                id.0,
                u8::from(st.demoted),
                st.quarantined_records,
                st.programs.len()
            );
            for prog in &st.programs {
                let _ = writeln!(
                    p,
                    "prog {}",
                    PortableProgram::from_program(prog, &self.interner).to_sexpr()
                );
            }
        }
        for op in &self.pending_churn {
            match op {
                ChurnOp::Register { tenant, program } => {
                    let _ = writeln!(
                        p,
                        "pend reg {} {}",
                        tenant.0,
                        PortableProgram::from_program(program, &self.interner).to_sexpr()
                    );
                }
                ChurnOp::Deregister { tenant, query } => {
                    let _ = writeln!(p, "pend dereg {} {}", tenant.0, query.0);
                }
            }
        }
        for op in &self.plan_ops {
            match op {
                PlanOp::Add(prog) => {
                    let _ = writeln!(
                        p,
                        "pop add {}",
                        PortableProgram::from_program(prog, &self.interner).to_sexpr()
                    );
                }
                PlanOp::Remove(id) => {
                    let _ = writeln!(p, "pop rem {}", id.0);
                }
            }
        }
        p
    }

    /// Restores checkpointed state into a fresh service (inverse of
    /// [`Service::checkpoint_payload`]). Plan-op history is replayed
    /// through real delta operations so the rebuilt tree is bit-identical.
    fn restore_checkpoint(&mut self, payload: &str) -> Result<(), String>
    where
        E::Rec: JournalRec,
    {
        let mut lines = payload.lines().peekable();
        while let Some(line) = lines.next() {
            let mut words = line.split_ascii_whitespace();
            match words.next() {
                Some("epoch") => {
                    self.epoch = parse_field(words.next(), "epoch")?;
                }
                Some("counters") => {
                    self.counters.admitted = parse_field(words.next(), "admitted")?;
                    self.counters.rejected = parse_field(words.next(), "rejected")?;
                    self.counters.shed = parse_field(words.next(), "shed")?;
                    self.counters.processed = parse_field(words.next(), "processed")?;
                }
                Some("queue") => {
                    let next_batch = parse_field(words.next(), "next_batch")?;
                    let next_seq = parse_field(words.next(), "next_seq")?;
                    self.queue.set_counters(next_batch, next_seq);
                }
                Some("batch") => {
                    let id = parse_field(words.next(), "batch id")?;
                    let submitted_epoch = parse_field(words.next(), "batch epoch")?;
                    let start_seq = parse_field(words.next(), "batch seq")?;
                    let n: usize = parse_field(words.next(), "batch n")?;
                    let mut records = Vec::with_capacity(n);
                    for _ in 0..n {
                        let rec_line = lines.next().ok_or("batch records truncated")?;
                        records.push(parse_rec::<E::Rec>(rec_line)?);
                    }
                    self.queue.restore_batch(PendingBatch {
                        id,
                        submitted_epoch,
                        start_seq,
                        records,
                    });
                }
                Some("tenant") => {
                    let id: u32 = parse_field(words.next(), "tenant id")?;
                    let demoted: u8 = parse_field(words.next(), "tenant demoted")?;
                    let quarantined: u64 = parse_field(words.next(), "tenant tq")?;
                    let nprogs: usize = parse_field(words.next(), "tenant nprogs")?;
                    let mut programs = Vec::with_capacity(nprogs);
                    for _ in 0..nprogs {
                        let prog_line = lines.next().ok_or("tenant programs truncated")?;
                        let src = prog_line
                            .strip_prefix("prog ")
                            .ok_or("expected prog line")?;
                        let prog =
                            PortableProgram::parse_sexpr(src)?.to_program(&mut self.interner);
                        self.owner.insert(prog.id.0, TenantId(id));
                        programs.push(prog);
                    }
                    self.tenants.insert(
                        TenantId(id),
                        TenantState {
                            programs,
                            demoted: demoted != 0,
                            quarantined_records: quarantined,
                        },
                    );
                }
                Some("pend") => match words.next() {
                    Some("reg") => {
                        let tenant: u32 = parse_field(words.next(), "pend tenant")?;
                        let src = words.collect::<Vec<_>>().join(" ");
                        let program =
                            PortableProgram::parse_sexpr(&src)?.to_program(&mut self.interner);
                        self.pending_churn.push_back(ChurnOp::Register {
                            tenant: TenantId(tenant),
                            program,
                        });
                    }
                    Some("dereg") => {
                        let tenant: u32 = parse_field(words.next(), "pend tenant")?;
                        let query: u32 = parse_field(words.next(), "pend query")?;
                        self.pending_churn.push_back(ChurnOp::Deregister {
                            tenant: TenantId(tenant),
                            query: ProgId(query),
                        });
                    }
                    _ => return Err(format!("bad pend line {line:?}")),
                },
                Some("pop") => match words.next() {
                    Some("add") => {
                        let src = words.collect::<Vec<_>>().join(" ");
                        let prog =
                            PortableProgram::parse_sexpr(&src)?.to_program(&mut self.interner);
                        self.plan
                            .add(
                                &prog,
                                &mut self.interner,
                                &self.cm,
                                &EnvCost(&self.env),
                                &self.config.consolidation,
                            )
                            .map_err(|e| format!("plan-op replay (add): {e}"))?;
                        self.plan_ops.push(PlanOp::Add(prog));
                    }
                    Some("rem") => {
                        let query: u32 = parse_field(words.next(), "pop query")?;
                        self.plan
                            .remove(
                                ProgId(query),
                                &self.interner,
                                &self.cm,
                                &EnvCost(&self.env),
                                &self.config.consolidation,
                            )
                            .map_err(|e| format!("plan-op replay (remove): {e}"))?;
                        self.plan_ops.push(PlanOp::Remove(ProgId(query)));
                    }
                    _ => return Err(format!("bad pop line {line:?}")),
                },
                _ => return Err(format!("unrecognized checkpoint line {line:?}")),
            }
        }
        self.qs_dirty = true;
        Ok(())
    }

    /// Replays one journal frame into service state. Deterministic parts
    /// (admission arithmetic, churn application, epoch-start drains) are
    /// re-derived; engine-dependent effects come from the frame. Records
    /// are never re-executed.
    fn replay_frame(
        &mut self,
        frame: &journal::LoadedFrame,
        report: &mut RecoveryReport,
    ) -> Result<(), String>
    where
        E::Rec: JournalRec,
    {
        match frame.kind.as_str() {
            "sub" => {
                let mut lines = frame.payload.lines();
                let head = lines.next().ok_or("empty sub frame")?;
                let mut words = head.split_ascii_whitespace();
                expect_word(&mut words, "batch")?;
                let id = parse_field(words.next(), "batch id")?;
                expect_word(&mut words, "epoch")?;
                let submitted_epoch = parse_field(words.next(), "batch epoch")?;
                expect_word(&mut words, "seq")?;
                let start_seq = parse_field(words.next(), "batch seq")?;
                expect_word(&mut words, "n")?;
                let n: usize = parse_field(words.next(), "batch n")?;
                let mut records = Vec::with_capacity(n);
                for _ in 0..n {
                    let rec_line = lines.next().ok_or("sub frame records truncated")?;
                    records.push(parse_rec::<E::Rec>(rec_line)?);
                }
                self.counters.admitted += n as u64;
                self.queue.restore_batch(PendingBatch {
                    id,
                    submitted_epoch,
                    start_seq,
                    records,
                });
                Ok(())
            }
            "rej" => {
                let mut words = frame.payload.split_ascii_whitespace();
                expect_word(&mut words, "n")?;
                let n: u64 = parse_field(words.next(), "rejected n")?;
                self.counters.rejected += n;
                Ok(())
            }
            "reg" => {
                let mut lines = frame.payload.lines();
                let head = lines.next().ok_or("empty reg frame")?;
                let mut words = head.split_ascii_whitespace();
                expect_word(&mut words, "tenant")?;
                let tenant = TenantId(parse_field(words.next(), "tenant")?);
                expect_word(&mut words, "outcome")?;
                let tag = words.next().ok_or("reg frame missing outcome")?;
                let src = lines.next().ok_or("reg frame missing program")?;
                let program = PortableProgram::parse_sexpr(src)?.to_program(&mut self.interner);
                match tag {
                    "deferred" => {
                        self.pending_churn.push_back(ChurnOp::Register { tenant, program });
                        Ok(())
                    }
                    "applied" | "solo" => self
                        .apply_register(tenant, &program)
                        .map(|_| ())
                        .map_err(|e| format!("reg replay: {e}")),
                    other => Err(format!("bad reg outcome {other:?}")),
                }
            }
            "dereg" => {
                let head = frame.payload.lines().next().ok_or("empty dereg frame")?;
                let mut words = head.split_ascii_whitespace();
                expect_word(&mut words, "tenant")?;
                let tenant = TenantId(parse_field(words.next(), "tenant")?);
                expect_word(&mut words, "query")?;
                let query = ProgId(parse_field(words.next(), "query")?);
                expect_word(&mut words, "outcome")?;
                let tag = words.next().ok_or("dereg frame missing outcome")?;
                match tag {
                    "cancelled" => {
                        let at = self
                            .pending_register(query)
                            .ok_or("cancelled dereg has no pending registration")?;
                        self.pending_churn.remove(at);
                        Ok(())
                    }
                    "deferred" => {
                        self.pending_churn.push_back(ChurnOp::Deregister { tenant, query });
                        Ok(())
                    }
                    "applied" | "solo" => self
                        .apply_deregister(tenant, query)
                        .map(|_| ())
                        .map_err(|e| format!("dereg replay: {e}")),
                    other => Err(format!("bad dereg outcome {other:?}")),
                }
            }
            "epoch" => {
                let (epoch, digest) = self.replay_epoch(&frame.payload)?;
                report.replayed_epoch_digests.push((epoch, digest));
                Ok(())
            }
            other => Err(format!("unknown frame kind {other:?}")),
        }
    }

    /// Replays one committed epoch without re-executing any record: the
    /// deterministic epoch-start transitions (churn drain, deadline shed,
    /// batch drain) are recomputed from the reconstructed queue, and the
    /// engine-dependent effects (demotions, quarantine deltas) are applied
    /// from the commit frame. Cross-checks the drained record count
    /// against the journaled one.
    fn replay_epoch(&mut self, payload: &str) -> Result<(u64, u64), String> {
        let mut lines = payload.lines();
        let head = lines.next().ok_or("empty epoch frame")?;
        let mut words = head.split_ascii_whitespace();
        expect_word(&mut words, "epoch")?;
        let epoch: u64 = parse_field(words.next(), "epoch")?;
        expect_word(&mut words, "mode")?;
        let _mode = words.next().ok_or("epoch frame missing mode")?;
        expect_word(&mut words, "processed")?;
        let processed: usize = parse_field(words.next(), "processed")?;
        expect_word(&mut words, "applied")?;
        let _applied: usize = parse_field(words.next(), "applied")?;
        expect_word(&mut words, "errors")?;
        let _errors: usize = parse_field(words.next(), "errors")?;
        expect_word(&mut words, "digest")?;
        let digest = u64::from_str_radix(words.next().ok_or("epoch frame missing digest")?, 16)
            .map_err(|_| "bad epoch digest".to_owned())?;
        self.epoch += 1;
        if self.epoch != epoch {
            return Err(format!(
                "epoch frame {epoch} replayed at service epoch {}",
                self.epoch
            ));
        }
        let pressure = self.queue.pressure();
        if pressure < self.config.degrade_watermark {
            while let Some(op) = self.pending_churn.pop_front() {
                // Same deterministic application as the original epoch;
                // errors reproduce identically and were report-only.
                let _ = match op {
                    ChurnOp::Register { tenant, program } => {
                        self.apply_register(tenant, &program).map(|_| ())
                    }
                    ChurnOp::Deregister { tenant, query } => {
                        self.apply_deregister(tenant, query).map(|_| ())
                    }
                };
            }
        }
        if pressure >= self.config.shed_watermark {
            for (_, records) in self
                .queue
                .shed_expired(self.epoch, self.config.deadline_epochs)
            {
                self.counters.shed += records.len() as u64;
                drop(records);
            }
        }
        let drained: usize = self
            .queue
            .drain_up_to(self.config.epoch_batch_limit)
            .iter()
            .map(|b| b.records.len())
            .sum();
        if drained != processed {
            return Err(format!(
                "epoch {epoch} drained {drained} records on replay but journaled {processed}"
            ));
        }
        self.counters.processed += processed as u64;
        for line in lines {
            let mut words = line.split_ascii_whitespace();
            match words.next() {
                Some("demote") => {
                    let t: u32 = parse_field(words.next(), "demote tenant")?;
                    self.demote_tenant(TenantId(t))
                        .map_err(|e| format!("demote replay: {e}"))?;
                }
                Some("tq") => {
                    let t: u32 = parse_field(words.next(), "tq tenant")?;
                    let delta: u64 = parse_field(words.next(), "tq delta")?;
                    let state = self
                        .tenants
                        .get_mut(&TenantId(t))
                        .ok_or("tq for unknown tenant")?;
                    state.quarantined_records += delta;
                }
                other => return Err(format!("bad epoch effect line {other:?}")),
            }
        }
        Ok((epoch, digest))
    }
}

/// Wire tag for a churn outcome in journal frames.
fn churn_tag(outcome: &ChurnOutcome) -> &'static str {
    match outcome {
        ChurnOutcome::Applied(_) => "applied",
        ChurnOutcome::AppliedSolo => "solo",
        ChurnOutcome::Deferred => "deferred",
        ChurnOutcome::Cancelled => "cancelled",
    }
}

/// Wire tag for an epoch mode in journal frames.
fn mode_tag(mode: EpochMode) -> &'static str {
    match mode {
        EpochMode::Idle => "idle",
        EpochMode::Consolidated => "cons",
        EpochMode::Sequential => "seq",
    }
}

/// FNV-64 digest of an epoch's observable effects (see
/// [`EpochReport::output_digest`]).
fn epoch_digest(report: &EpochReport) -> u64 {
    let mut h = naiad_lite::digest::Fnv64::new();
    h.u64(report.epoch);
    h.u64(match report.mode {
        EpochMode::Idle => 0,
        EpochMode::Consolidated => 1,
        EpochMode::Sequential => 2,
    });
    h.u64(report.processed as u64);
    h.u64(report.applied_churn as u64);
    h.u64(report.churn_errors.len() as u64);
    for s in &report.shed {
        h.u64(s.batch);
        h.u64(s.records as u64);
        h.u64(s.waited_epochs);
    }
    for t in &report.demoted {
        h.u64(u64::from(t.0));
    }
    for (t, rep) in &report.tenants {
        h.u64(u64::from(t.0));
        h.u64(u64::from(rep.solo));
        for (q, c) in &rep.counts {
            h.u64(u64::from(*q));
            h.u64(*c);
        }
        for &s in &rep.quarantined {
            h.u64(s);
        }
    }
    h.finish()
}

/// Parses one whitespace-delimited field, naming it in the error.
fn parse_field<T: std::str::FromStr>(word: Option<&str>, what: &str) -> Result<T, String> {
    word.ok_or_else(|| format!("missing {what}"))?
        .parse()
        .map_err(|_| format!("bad {what}"))
}

/// Consumes one expected literal word from a frame line.
fn expect_word(
    words: &mut std::str::SplitAsciiWhitespace<'_>,
    expected: &str,
) -> Result<(), String> {
    match words.next() {
        Some(w) if w == expected => Ok(()),
        other => Err(format!("expected {expected:?}, got {other:?}")),
    }
}

/// Decodes one `rec <payload>` line back into a record.
fn parse_rec<R: JournalRec>(line: &str) -> Result<R, String> {
    let src = line.strip_prefix("rec").ok_or("expected rec line")?;
    R::decode_rec(src.strip_prefix(' ').unwrap_or(src))
}
