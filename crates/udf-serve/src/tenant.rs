//! Tenant identity, state, and the churn operations applied at epoch
//! boundaries.

use udf_lang::ast::{ProgId, Program};

/// A tenant of the service. Ordering is the service's deterministic
/// iteration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u32);

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant-{}", self.0)
    }
}

/// Everything the service tracks per tenant.
#[derive(Debug, Clone)]
pub struct TenantState {
    /// The tenant's registered programs, as supplied (the solo execution
    /// path and the guard's culprit attribution compile from these).
    pub programs: Vec<Program>,
    /// Whether the tenant has been demoted out of the shared consolidated
    /// plan. A demoted tenant's queries run solo and sequential; its
    /// registrations never re-enter the shared plan within this service
    /// instance.
    pub demoted: bool,
    /// Records attributed to this tenant's quarantine across all epochs.
    /// Crossing [`crate::ServeConfig::tenant_quarantine_budget`] demotes
    /// the tenant.
    pub quarantined_records: u64,
}

impl TenantState {
    pub(crate) fn new() -> TenantState {
        TenantState {
            programs: Vec::new(),
            demoted: false,
            quarantined_records: 0,
        }
    }

    /// Ids of the tenant's registered queries, in registration order.
    pub fn query_ids(&self) -> Vec<ProgId> {
        self.programs.iter().map(|p| p.id).collect()
    }
}

/// A register/deregister waiting for a calm epoch (see
/// [`crate::Service::register`]: churn is deferred while queue pressure is
/// above the degrade watermark, so plan surgery never competes with a
/// backlog for the epoch's time).
#[derive(Debug, Clone)]
pub(crate) enum ChurnOp {
    Register {
        tenant: TenantId,
        program: Program,
    },
    Deregister {
        tenant: TenantId,
        query: ProgId,
    },
}

/// How a register/deregister call was handled.
#[derive(Debug, Clone)]
pub enum ChurnOutcome {
    /// Applied immediately via a delta operation on the shared plan.
    Applied(Box<consolidate::DeltaReport>),
    /// Applied immediately, but outside the shared plan (the tenant is
    /// demoted, so its queries run solo).
    AppliedSolo,
    /// Queued: pressure is above the degrade watermark; the op will apply
    /// at the start of the first calm epoch, in submission order.
    Deferred,
    /// A deregistration cancelled a still-pending registration of the same
    /// query before it ever reached the plan.
    Cancelled,
}
