//! Service-level behaviour: admission control and shedding are explicit,
//! churn defers under pressure, and a hostile tenant is demoted alone —
//! every other tenant's epoch reports are bit-identical to a run where the
//! hostile tenant never existed.

use naiad_lite::fault::{silence_injected_panics, FaultKind, FaultPlan, FaultyEnv};
use naiad_lite::{ScalarEnv, UdfEnv};
use udf_lang::ast::Program;
use udf_lang::intern::Interner;
use udf_lang::FnLibrary;
use udf_serve::{
    Admission, ChurnOutcome, EpochMode, RejectReason, ServeConfig, Service, TenantEpochReport,
    TenantId,
};

type Env = FaultyEnv<ScalarEnv>;
type Rec = <Env as UdfEnv>::Rec;

fn library(interner: &mut Interner) -> FnLibrary {
    let probe = interner.intern("probe");
    let half = interner.intern("half");
    let mut lib = FnLibrary::new();
    lib.register(probe, "probe", 1, 20, |a| a[0]);
    lib.register(half, "half", 1, 10, |a| a[0] / 2);
    lib
}

/// A threshold query for tenant isolation tests. `hostile` queries call
/// `probe` — the fault trigger — so only their UDFs fault; innocent
/// queries stay on `half`.
fn query(interner: &mut Interner, id: u32, threshold: i64, hostile: bool) -> Program {
    let f = if hostile { "probe" } else { "half" };
    udf_lang::parse::parse_program(
        &format!(
            "program q{id} @{id} (v) {{
                 p := {f}(v);
                 if (p > {threshold}) {{ notify true; }} else {{ notify false; }}
             }}"
        ),
        interner,
    )
    .expect("test program parses")
}

fn service(fault: FaultPlan, config: ServeConfig) -> Service<Env> {
    let mut interner = Interner::new();
    let lib = library(&mut interner);
    let trigger = interner.intern("probe");
    let env = FaultyEnv::new(ScalarEnv::new(1, lib), trigger, fault);
    let mut svc = Service::new(env, config);
    // Service-owned interner must agree with the library's symbols.
    *svc.interner_mut() = interner;
    svc
}

fn batch(range: std::ops::Range<i64>) -> Vec<Rec> {
    range.map(|v| (v as usize, vec![v])).collect()
}

#[test]
fn admission_is_bounded_and_shedding_is_explicit() {
    let mut svc = service(
        FaultPlan::none(),
        ServeConfig {
            queue_capacity: 10,
            epoch_batch_limit: 2,
            deadline_epochs: 0,
            ..ServeConfig::default()
        },
    );
    let t = TenantId(1);
    let q = query(svc.interner_mut(), 1, 5, false);
    svc.register(t, &q).expect("registers");

    // Five batches of two records fill the queue exactly.
    for i in 0..5 {
        let a = svc.submit(batch(i * 2..i * 2 + 2)).expect("journal off: infallible");
        assert!(matches!(a, Admission::Admitted { .. }), "batch {i}: {a:?}");
    }
    // The sixth is rejected — records never enter, nothing is dropped.
    match svc.submit(batch(10..12)).expect("journal off: infallible") {
        Admission::Rejected {
            reason: RejectReason::QueueFull { queued, capacity },
        } => {
            assert_eq!((queued, capacity), (10, 10));
        }
        other => panic!("expected QueueFull, got {other:?}"),
    }
    let acc = svc.accounting();
    assert_eq!(acc.admitted, 10);
    assert_eq!(acc.rejected, 2);
    assert!(acc.balanced());

    // Pressure 1.0 ≥ shed watermark: old batches are shed once they age
    // past the deadline, each reported explicitly.
    let mut processed = 0u64;
    let mut shed = 0u64;
    for _ in 0..4 {
        let rep = svc.run_epoch().expect("epoch runs");
        processed += rep.processed as u64;
        shed += rep.shed.iter().map(|s| s.records as u64).sum::<u64>();
        assert!(svc.accounting().balanced(), "after epoch {}", rep.epoch);
    }
    assert!(shed > 0, "aged batches under pressure must shed");
    let acc = svc.accounting();
    assert_eq!(acc.admitted, processed + shed + acc.queued);
}

#[test]
fn churn_defers_under_pressure_and_applies_when_calm() {
    let mut svc = service(
        FaultPlan::none(),
        ServeConfig {
            queue_capacity: 4,
            epoch_batch_limit: 4,
            degrade_watermark: 0.75,
            ..ServeConfig::default()
        },
    );
    let t = TenantId(1);
    let q1 = query(svc.interner_mut(), 1, 5, false);
    let q2 = query(svc.interner_mut(), 2, 9, false);
    svc.register(t, &q1).expect("calm registration applies");
    assert_eq!(svc.status().plan_queries, 1);

    svc.submit(batch(0..4)).expect("journal off: infallible");
    assert!(svc.status().pressure >= 0.75);
    let out = svc.register(t, &q2).expect("pressured registration defers");
    assert!(matches!(out, ChurnOutcome::Deferred));
    assert_eq!(svc.status().plan_queries, 1, "deferred op must not touch the plan");

    // The pressured epoch defers churn and runs sequentially.
    let rep = svc.run_epoch().expect("epoch runs");
    assert_eq!(rep.deferred_churn, 1);
    assert_eq!(rep.mode, EpochMode::Sequential);
    // The calm epoch applies it.
    let rep = svc.run_epoch().expect("epoch runs");
    assert_eq!(rep.applied_churn, 1);
    assert!(rep.churn_errors.is_empty());
    assert_eq!(svc.status().plan_queries, 2);

    // With the queue drained and pressure low, consolidated execution
    // resumes.
    svc.submit(batch(0..2)).expect("journal off: infallible");
    let rep = svc.run_epoch().expect("epoch runs");
    assert_eq!(rep.mode, EpochMode::Consolidated);
    let counts = &rep.tenants[&t].counts;
    assert_eq!(counts[&1], 0, "half(v) ≤ 1 for v < 4");
    assert_eq!(counts[&2], 0);
}

/// Runs `epochs` epochs over the same deterministic record stream and
/// returns every tenant's per-epoch report.
fn drive(
    svc: &mut Service<Env>,
    epochs: u64,
) -> Vec<std::collections::BTreeMap<TenantId, TenantEpochReport>> {
    let mut out = Vec::new();
    for e in 0..epochs {
        let lo = (e as i64) * 20;
        match svc.submit(batch(lo..lo + 20)).expect("journal off: infallible") {
            Admission::Admitted { .. } => {}
            other => panic!("stream must admit: {other:?}"),
        }
        let rep = svc.run_epoch().expect("epoch runs");
        assert!(svc.accounting().balanced(), "epoch {}", rep.epoch);
        out.push(rep.tenants);
    }
    out
}

#[test]
fn hostile_tenant_is_demoted_alone_and_others_are_bit_identical() {
    silence_injected_panics();
    let faults = FaultPlan::seeded_kinds(
        0x5e21,
        60,
        8,
        &[FaultKind::LibError, FaultKind::Panic],
    );
    let config = ServeConfig {
        queue_capacity: 64,
        epoch_batch_limit: 20,
        tenant_quarantine_budget: 2,
        ..ServeConfig::default()
    };
    let good = TenantId(1);
    let also_good = TenantId(2);
    let hostile = TenantId(3);

    // Run A: two innocent tenants plus the hostile one.
    let mut with_hostile = service(faults.clone(), config.clone());
    for (id, th, t, bad) in [
        (10, 4, good, false),
        (11, 9, good, false),
        (20, 14, also_good, false),
        (30, 7, hostile, true),
        (31, 2, hostile, true),
    ] {
        let q = query(with_hostile.interner_mut(), id, th, bad);
        with_hostile.register(t, &q).expect("registers");
    }
    let reports_a = drive(&mut with_hostile, 3);

    // The hostile tenant — and only it — is demoted, and only its epoch
    // reports carry quarantined records.
    let st = with_hostile.status();
    assert_eq!(st.demoted_tenants, 1);
    assert!(with_hostile.tenant(hostile).expect("exists").demoted);
    assert!(!with_hostile.tenant(good).expect("exists").demoted);
    assert!(!with_hostile.tenant(also_good).expect("exists").demoted);
    assert!(
        reports_a.iter().any(|e| !e[&hostile].quarantined.is_empty()),
        "faults must be attributed to the hostile tenant"
    );
    for e in &reports_a {
        assert!(e[&good].quarantined.is_empty(), "innocent tenant 1 quarantined");
        assert!(e[&also_good].quarantined.is_empty(), "innocent tenant 2 quarantined");
    }

    // Run B: identical stream, hostile tenant never registered.
    let mut without_hostile = service(faults, config);
    for (id, th, t) in [(10, 4, good), (11, 9, good), (20, 14, also_good)] {
        let q = query(without_hostile.interner_mut(), id, th, false);
        without_hostile.register(t, &q).expect("registers");
    }
    let reports_b = drive(&mut without_hostile, 3);

    // Bit-identical isolation: the innocents' reports do not depend on the
    // hostile tenant's existence.
    for (a, b) in reports_a.iter().zip(&reports_b) {
        assert_eq!(a[&good], b[&good], "tenant 1 must be unaffected");
        assert_eq!(a[&also_good], b[&also_good], "tenant 2 must be unaffected");
    }
}

#[test]
fn same_seed_runs_are_identical() {
    silence_injected_panics();
    let run = || {
        let faults = FaultPlan::seeded_kinds(
            0xd00d,
            100,
            10,
            &[FaultKind::LibError, FaultKind::Panic, FaultKind::Transient(1)],
        );
        let mut svc = service(
            faults,
            ServeConfig {
                queue_capacity: 32,
                epoch_batch_limit: 16,
                tenant_quarantine_budget: 1,
                ..ServeConfig::default()
            },
        );
        for (id, th, t, bad) in [(1, 3, TenantId(1), false), (2, 8, TenantId(2), true)] {
            let q = query(svc.interner_mut(), id, th, bad);
            svc.register(t, &q).expect("registers");
        }
        let mut log = String::new();
        for e in 0..5u64 {
            let lo = (e as i64) * 16;
            let _ = svc.submit(batch(lo..lo + 16));
            let rep = svc.run_epoch().expect("epoch runs");
            log.push_str(&format!(
                "epoch={} mode={:?} processed={} demoted={:?} tenants={:?}\n",
                rep.epoch, rep.mode, rep.processed, rep.demoted, rep.tenants
            ));
        }
        log.push_str(&format!("{:?}", svc.accounting()));
        log
    };
    assert_eq!(run(), run(), "same-seed service runs must be byte-identical");
}

/// A pushdown-friendly query: a cheap `v >= k` guard nests the library call,
/// so the synthesized shared pre-filter is the disjunction of the guards.
fn guarded_query(interner: &mut Interner, id: u32, k: i64, threshold: i64) -> Program {
    udf_lang::parse::parse_program(
        &format!(
            "program g{id} @{id} (v) {{
                 if (v >= {k}) {{
                     p := half(v);
                     if (p > {threshold}) {{ notify true; }} else {{ notify false; }}
                 }} else {{ notify false; }}
             }}"
        ),
        interner,
    )
    .expect("test program parses")
}

/// Churn must never leave a stale pre-filter attached: every register /
/// deregister clears it immediately (before the changed plan is stored),
/// and the next calm epoch re-synthesizes it for the *new* query set.
#[test]
fn prefilter_rebuilds_on_churn() {
    let mut svc = service(
        FaultPlan::none(),
        ServeConfig {
            consolidation: consolidate::Options {
                prefilter: true,
                ..consolidate::Options::default()
            },
            ..ServeConfig::default()
        },
    );
    let t = TenantId(1);
    for (id, k, th) in [(1u32, 10i64, 3i64), (2, 20, 4)] {
        let q = guarded_query(svc.interner_mut(), id, k, th);
        svc.register(t, &q).expect("registers");
    }
    assert!(svc.prefilter().is_none(), "nothing synthesized before an epoch");

    let _ = svc.submit(batch(0..8));
    svc.run_epoch().expect("epoch runs");
    let cond1 = svc.prefilter().expect("epoch synthesized a pre-filter").cond.clone();

    // Registering widens the reachable set; the stale filter would wrongly
    // skip records only the new query selects, so it must drop at once.
    let q3 = guarded_query(svc.interner_mut(), 3, 5, 1);
    svc.register(t, &q3).expect("registers");
    assert!(svc.prefilter().is_none(), "churn clears the stale pre-filter");
    let _ = svc.submit(batch(8..16));
    svc.run_epoch().expect("epoch runs");
    let cond2 = svc.prefilter().expect("re-synthesized after register").cond.clone();
    assert_ne!(cond1, cond2, "the new guard must widen the condition");

    // Deregistering restores the original query set — and the rebuilt
    // condition is bit-identical to the original synthesis.
    svc.deregister(t, udf_lang::ast::ProgId(3)).expect("deregisters");
    assert!(svc.prefilter().is_none(), "churn clears the stale pre-filter");
    let _ = svc.submit(batch(16..24));
    svc.run_epoch().expect("epoch runs");
    let cond3 = svc.prefilter().expect("re-synthesized after deregister").cond.clone();
    assert_eq!(cond1, cond3, "same query set, same condition");
}
