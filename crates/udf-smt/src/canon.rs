//! Canonical 128-bit hashing of entailment queries, for cross-thread
//! memoization.
//!
//! `consolidate_many` runs its pair threads over *independent* [`Context`]s,
//! but consolidating structurally equal program pairs produces structurally
//! equal obligations `Ψ ⊨ φ` whose only difference is variable naming (SSA
//! versions like `u0$x%3@2` embed per-run fresh counters). The verdict of an
//! entailment is invariant under any injective renaming of the free
//! variables applied *jointly* to Ψ and φ, so a memo table may be keyed on a
//! canonical form that erases names: variables are numbered by first
//! occurrence in a fixed traversal of Ψ then φ, while function symbols keep
//! their (semantic) names and arities.
//!
//! The hash is a 128-bit FNV-1a over a prefix-free tagged byte stream —
//! deterministic across processes and independent of the arena ids in any
//! particular [`Context`]. Collisions are possible in principle (the table
//! maps hash → verdict without storing the formulas), but at 128 bits they
//! are negligible next to solver resource limits; a false hit would require
//! an FNV-128 collision between two canonical streams.

use crate::ctx::{Context, Formula, FormulaId, Term, TermId, VarId};
use std::collections::HashMap;

const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

struct Hasher<'c> {
    ctx: &'c Context,
    vars: HashMap<VarId, u64>,
    state: u128,
}

impl<'c> Hasher<'c> {
    fn new(ctx: &'c Context) -> Hasher<'c> {
        Hasher {
            ctx,
            vars: HashMap::new(),
            state: FNV_OFFSET,
        }
    }

    fn byte(&mut self, b: u8) {
        self.state ^= u128::from(b);
        self.state = self.state.wrapping_mul(FNV_PRIME);
    }

    fn bytes(&mut self, bs: &[u8]) {
        for &b in bs {
            self.byte(b);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    fn var(&mut self, v: VarId) {
        let next = self.vars.len() as u64;
        let idx = *self.vars.entry(v).or_insert(next);
        self.byte(2);
        self.u64(idx);
    }

    fn term(&mut self, id: TermId) {
        match self.ctx.term(id) {
            Term::Int(c) => {
                self.byte(1);
                self.bytes(&c.to_le_bytes());
            }
            Term::Var(v) => self.var(*v),
            Term::App(f, args) => {
                self.byte(3);
                // Function symbols are semantic: hash the resolved name, not
                // the per-context id.
                let name = self.ctx.fn_name(*f).to_owned();
                self.str(&name);
                self.u64(args.len() as u64);
                for &a in args {
                    self.term(a);
                }
            }
            Term::Add(a, b) => {
                self.byte(4);
                self.term(*a);
                self.term(*b);
            }
            Term::Sub(a, b) => {
                self.byte(5);
                self.term(*a);
                self.term(*b);
            }
            Term::Mul(a, b) => {
                self.byte(6);
                self.term(*a);
                self.term(*b);
            }
        }
    }

    fn formula(&mut self, id: FormulaId) {
        match self.ctx.formula(id) {
            Formula::True => self.byte(7),
            Formula::False => self.byte(8),
            Formula::Le(a, b) => {
                self.byte(9);
                self.term(*a);
                self.term(*b);
            }
            Formula::Lt(a, b) => {
                self.byte(10);
                self.term(*a);
                self.term(*b);
            }
            Formula::Eq(a, b) => {
                self.byte(11);
                self.term(*a);
                self.term(*b);
            }
            Formula::Not(f) => {
                self.byte(12);
                self.formula(*f);
            }
            Formula::And(a, b) => {
                self.byte(13);
                self.formula(*a);
                self.formula(*b);
            }
            Formula::Or(a, b) => {
                self.byte(14);
                self.formula(*a);
                self.formula(*b);
            }
        }
    }
}

/// Canonical key of the entailment query `psi ⊨ phi` inside `ctx`.
///
/// Two queries — possibly in different contexts — receive the same key
/// whenever they are identical up to a joint injective renaming of their
/// variables. The variable numbering is shared across both formulas (Ψ is
/// walked first), so cross-formula variable sharing is preserved: the key of
/// `x ≤ 3 ⊨ x ≤ 5` differs from the key of `x ≤ 3 ⊨ y ≤ 5`.
pub fn entailment_key(ctx: &Context, psi: FormulaId, phi: FormulaId) -> u128 {
    let mut h = Hasher::new(ctx);
    h.byte(b'E');
    h.formula(psi);
    h.byte(b'|');
    h.formula(phi);
    h.state
}

/// Canonical key of a single formula (fresh variable numbering).
pub fn formula_key(ctx: &Context, f: FormulaId) -> u128 {
    let mut h = Hasher::new(ctx);
    h.formula(f);
    h.state
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds `v ≤ k ∧ f(v) = w` over the given variable names.
    fn shape(ctx: &mut Context, v: &str, w: &str, k: i64) -> (FormulaId, FormulaId) {
        let x = ctx.int_var(v);
        let y = ctx.int_var(w);
        let kk = ctx.int(k);
        let f = ctx.fn_sym("f", 1);
        let fx = ctx.app(f, vec![x]);
        let le = ctx.le(x, kk);
        let eq = ctx.eq(fx, y);
        let psi = ctx.and(le, eq);
        let phi = ctx.le(y, kk);
        (psi, phi)
    }

    #[test]
    fn renamed_queries_share_a_key() {
        let mut c1 = Context::new();
        let (p1, q1) = shape(&mut c1, "u0$x%3@2", "u0$y%4@1", 10);
        let mut c2 = Context::new();
        // Different names, different declaration interleaving history.
        let _noise = c2.int_var("zzz");
        let (p2, q2) = shape(&mut c2, "u7$x%55@9", "u7$y%56@3", 10);
        assert_eq!(entailment_key(&c1, p1, q1), entailment_key(&c2, p2, q2));
    }

    #[test]
    fn constants_and_structure_separate_keys() {
        let mut c1 = Context::new();
        let (p1, q1) = shape(&mut c1, "x", "y", 10);
        let mut c2 = Context::new();
        let (p2, q2) = shape(&mut c2, "x", "y", 11);
        assert_ne!(entailment_key(&c1, p1, q1), entailment_key(&c2, p2, q2));
    }

    #[test]
    fn variable_sharing_across_psi_and_phi_matters() {
        let mut c = Context::new();
        let x = c.int_var("x");
        let y = c.int_var("y");
        let three = c.int(3);
        let five = c.int(5);
        let psi = c.le(x, three);
        let phi_same = c.le(x, five);
        let phi_other = c.le(y, five);
        assert_ne!(
            entailment_key(&c, psi, phi_same),
            entailment_key(&c, psi, phi_other)
        );
    }

    #[test]
    fn function_names_are_semantic() {
        let mut c = Context::new();
        let x = c.int_var("x");
        let f = c.fn_sym("f", 1);
        let g = c.fn_sym("g", 1);
        let fx = c.app(f, vec![x]);
        let gx = c.app(g, vec![x]);
        let zero = c.int(0);
        let pf = c.le(fx, zero);
        let pg = c.le(gx, zero);
        assert_ne!(formula_key(&c, pf), formula_key(&c, pg));
    }
}
