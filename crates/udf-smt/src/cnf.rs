//! Tseitin compilation of formulas to CNF over theory atoms.
//!
//! Every theory atom (`≤`, `<`, `=`) becomes one SAT variable; composite
//! nodes get auxiliary variables with the standard Tseitin equivalences. The
//! mapping from SAT variables back to atoms is returned so the solver can
//! translate satisfying assignments into theory literal sets.

use crate::ctx::{Context, Formula, FormulaId};
use crate::sat::{Lit, SatSolver, Var};
use std::collections::HashMap;

/// Result of compiling a formula: the clauses have been added to the solver;
/// `atoms` maps the SAT variables that stand for theory atoms to their
/// formula ids.
#[derive(Debug)]
pub struct CompiledFormula {
    /// SAT variable → theory atom.
    pub atoms: HashMap<Var, FormulaId>,
}

/// Compiles `root` into `solver`, returning the atom mapping.
///
/// Uses full (bidirectional) Tseitin encoding so the formula and its CNF are
/// equisatisfiable and every total SAT assignment induces a well-defined
/// truth value for every atom.
pub fn compile(ctx: &Context, root: FormulaId, solver: &mut SatSolver) -> CompiledFormula {
    let mut c = Compiler {
        ctx,
        solver,
        lit_of: HashMap::new(),
        atoms: HashMap::new(),
    };
    let l = c.lit(root);
    c.solver.add_clause(&[l]);
    CompiledFormula { atoms: c.atoms }
}

struct Compiler<'a> {
    ctx: &'a Context,
    solver: &'a mut SatSolver,
    lit_of: HashMap<FormulaId, Lit>,
    atoms: HashMap<Var, FormulaId>,
}

impl<'a> Compiler<'a> {
    fn lit(&mut self, f: FormulaId) -> Lit {
        if let Some(&l) = self.lit_of.get(&f) {
            return l;
        }
        let l = match self.ctx.formula(f).clone() {
            Formula::True => {
                let v = self.solver.new_var();
                self.solver.add_clause(&[Lit::pos(v)]);
                Lit::pos(v)
            }
            Formula::False => {
                let v = self.solver.new_var();
                self.solver.add_clause(&[Lit::neg(v)]);
                Lit::pos(v)
            }
            Formula::Le(..) | Formula::Lt(..) | Formula::Eq(..) => {
                let v = self.solver.new_var();
                self.atoms.insert(v, f);
                Lit::pos(v)
            }
            Formula::Not(g) => self.lit(g).negate(),
            Formula::And(a, b) => {
                let la = self.lit(a);
                let lb = self.lit(b);
                let v = self.solver.new_var();
                let lv = Lit::pos(v);
                self.solver.add_clause(&[lv.negate(), la]);
                self.solver.add_clause(&[lv.negate(), lb]);
                self.solver.add_clause(&[lv, la.negate(), lb.negate()]);
                lv
            }
            Formula::Or(a, b) => {
                let la = self.lit(a);
                let lb = self.lit(b);
                let v = self.solver.new_var();
                let lv = Lit::pos(v);
                self.solver.add_clause(&[lv.negate(), la, lb]);
                self.solver.add_clause(&[lv, la.negate()]);
                self.solver.add_clause(&[lv, lb.negate()]);
                lv
            }
        };
        self.lit_of.insert(f, l);
        l
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::SatOutcome;

    #[test]
    fn pure_boolean_structure_is_sat_checked() {
        // (a ∨ b) ∧ ¬a ∧ ¬b over atoms a: x≤0, b: x=1 → propositionally unsat.
        let mut ctx = Context::new();
        let x = ctx.int_var("x");
        let zero = ctx.int(0);
        let one = ctx.int(1);
        let a = ctx.le(x, zero);
        let b = ctx.eq(x, one);
        let ab = ctx.or(a, b);
        let na = ctx.not(a);
        let nb = ctx.not(b);
        let f1 = ctx.and(ab, na);
        let phi = ctx.and(f1, nb);
        let mut sat = SatSolver::new();
        let compiled = compile(&ctx, phi, &mut sat);
        assert_eq!(compiled.atoms.len(), 2);
        assert_eq!(sat.solve(1000), SatOutcome::Unsat);
    }

    #[test]
    fn atom_assignment_is_recoverable() {
        let mut ctx = Context::new();
        let x = ctx.int_var("x");
        let zero = ctx.int(0);
        let a = ctx.le(x, zero);
        let na = ctx.not(a);
        let mut sat = SatSolver::new();
        let compiled = compile(&ctx, na, &mut sat);
        assert_eq!(sat.solve(1000), SatOutcome::Sat);
        let (&v, &atom) = compiled.atoms.iter().next().unwrap();
        assert_eq!(atom, a);
        assert!(!sat.value(v), "¬a requires the atom variable to be false");
    }

    #[test]
    fn shared_subformulas_compile_once() {
        let mut ctx = Context::new();
        let x = ctx.int_var("x");
        let zero = ctx.int(0);
        let a = ctx.le(x, zero);
        let phi = ctx.or(a, a); // folded to `a` by the smart constructor
        let mut sat = SatSolver::new();
        let compiled = compile(&ctx, phi, &mut sat);
        assert_eq!(compiled.atoms.len(), 1);
        assert_eq!(sat.solve(1000), SatOutcome::Sat);
    }

    #[test]
    fn constants_compile() {
        let mut ctx = Context::new();
        let t = ctx.tru();
        let mut sat = SatSolver::new();
        compile(&ctx, t, &mut sat);
        assert_eq!(sat.solve(100), SatOutcome::Sat);
        let f = ctx.fls();
        let mut sat2 = SatSolver::new();
        compile(&ctx, f, &mut sat2);
        assert_eq!(sat2.solve(100), SatOutcome::Unsat);
    }
}
