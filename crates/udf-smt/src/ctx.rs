//! Hash-consed terms and formulas.
//!
//! All terms and formulas live in a [`Context`]; structurally equal nodes are
//! shared, so `TermId`/`FormulaId` equality is structural equality. The
//! constructors perform light, obviously-sound normalization (constant
//! folding of ground atoms, unit laws for connectives, double-negation
//! elimination) so the solver never sees trivially reducible nodes.

use std::collections::HashMap;
use std::fmt;

/// Handle to a term in a [`Context`]. Equal handles denote structurally equal
/// terms.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TermId(pub(crate) u32);

/// Handle to a formula in a [`Context`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FormulaId(pub(crate) u32);

/// An integer-sorted variable.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct VarId(pub(crate) u32);

/// An uninterpreted function symbol with a fixed arity.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FnSym(pub(crate) u32);

impl VarId {
    /// Raw index (dense, starting at 0).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Integer-sorted term structure.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Term {
    /// Integer constant.
    Int(i64),
    /// Variable.
    Var(VarId),
    /// Uninterpreted function application.
    App(FnSym, Vec<TermId>),
    /// Addition.
    Add(TermId, TermId),
    /// Subtraction.
    Sub(TermId, TermId),
    /// Multiplication (treated as uninterpreted when both sides are
    /// non-constant — see [`crate::theory`]).
    Mul(TermId, TermId),
}

/// Formula structure (quantifier-free).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Formula {
    /// ⊤.
    True,
    /// ⊥.
    False,
    /// `t₁ ≤ t₂`.
    Le(TermId, TermId),
    /// `t₁ < t₂`.
    Lt(TermId, TermId),
    /// `t₁ = t₂`.
    Eq(TermId, TermId),
    /// Negation.
    Not(FormulaId),
    /// Conjunction.
    And(FormulaId, FormulaId),
    /// Disjunction.
    Or(FormulaId, FormulaId),
}

/// Arena of hash-consed terms and formulas plus symbol tables.
#[derive(Debug, Default, Clone)]
pub struct Context {
    terms: Vec<Term>,
    term_ids: HashMap<Term, TermId>,
    formulas: Vec<Formula>,
    formula_ids: HashMap<Formula, FormulaId>,
    var_names: Vec<String>,
    var_ids: HashMap<String, VarId>,
    fn_names: Vec<(String, usize)>,
    fn_ids: HashMap<String, FnSym>,
}

impl Context {
    /// Creates an empty context.
    pub fn new() -> Context {
        Context::default()
    }

    fn intern_term(&mut self, t: Term) -> TermId {
        if let Some(&id) = self.term_ids.get(&t) {
            return id;
        }
        let id = TermId(u32::try_from(self.terms.len()).expect("term pool overflow"));
        self.terms.push(t.clone());
        self.term_ids.insert(t, id);
        id
    }

    fn intern_formula(&mut self, f: Formula) -> FormulaId {
        if let Some(&id) = self.formula_ids.get(&f) {
            return id;
        }
        let id = FormulaId(u32::try_from(self.formulas.len()).expect("formula pool overflow"));
        self.formulas.push(f.clone());
        self.formula_ids.insert(f, id);
        id
    }

    /// The term behind a handle.
    pub fn term(&self, id: TermId) -> &Term {
        &self.terms[id.0 as usize]
    }

    /// The formula behind a handle.
    pub fn formula(&self, id: FormulaId) -> &Formula {
        &self.formulas[id.0 as usize]
    }

    /// Declares (or looks up) an integer variable named `name`.
    pub fn int_var(&mut self, name: &str) -> TermId {
        let var = self.var(name);
        self.intern_term(Term::Var(var))
    }

    /// Declares (or looks up) the [`VarId`] for `name`.
    pub fn var(&mut self, name: &str) -> VarId {
        if let Some(&v) = self.var_ids.get(name) {
            return v;
        }
        let v = VarId(u32::try_from(self.var_names.len()).expect("var pool overflow"));
        self.var_names.push(name.to_owned());
        self.var_ids.insert(name.to_owned(), v);
        v
    }

    /// Name of a variable.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.var_names[v.0 as usize]
    }

    /// Number of declared variables.
    pub fn num_vars(&self) -> usize {
        self.var_names.len()
    }

    /// Declares (or looks up) an uninterpreted function symbol.
    ///
    /// # Panics
    ///
    /// Panics if `name` was previously declared with a different arity.
    pub fn fn_sym(&mut self, name: &str, arity: usize) -> FnSym {
        if let Some(&f) = self.fn_ids.get(name) {
            assert_eq!(
                self.fn_names[f.0 as usize].1, arity,
                "function `{name}` redeclared with different arity"
            );
            return f;
        }
        let f = FnSym(u32::try_from(self.fn_names.len()).expect("fn pool overflow"));
        self.fn_names.push((name.to_owned(), arity));
        self.fn_ids.insert(name.to_owned(), f);
        f
    }

    /// Name of a function symbol.
    pub fn fn_name(&self, f: FnSym) -> &str {
        &self.fn_names[f.0 as usize].0
    }

    /// Arity of a function symbol.
    pub fn fn_arity(&self, f: FnSym) -> usize {
        self.fn_names[f.0 as usize].1
    }

    /// Integer constant term.
    pub fn int(&mut self, c: i64) -> TermId {
        self.intern_term(Term::Int(c))
    }

    /// Function application `f(args)`.
    ///
    /// # Panics
    ///
    /// Panics when `args.len()` differs from the declared arity.
    pub fn app(&mut self, f: FnSym, args: Vec<TermId>) -> TermId {
        assert_eq!(
            args.len(),
            self.fn_arity(f),
            "arity mismatch applying `{}`",
            self.fn_name(f)
        );
        self.intern_term(Term::App(f, args))
    }

    /// `a + b`, folding constants.
    pub fn add(&mut self, a: TermId, b: TermId) -> TermId {
        if let (Term::Int(x), Term::Int(y)) = (self.term(a), self.term(b)) {
            let (x, y) = (*x, *y);
            return self.int(x.wrapping_add(y));
        }
        self.intern_term(Term::Add(a, b))
    }

    /// `a - b`, folding constants.
    pub fn sub(&mut self, a: TermId, b: TermId) -> TermId {
        if let (Term::Int(x), Term::Int(y)) = (self.term(a), self.term(b)) {
            let (x, y) = (*x, *y);
            return self.int(x.wrapping_sub(y));
        }
        self.intern_term(Term::Sub(a, b))
    }

    /// `a * b`, folding constants.
    pub fn mul(&mut self, a: TermId, b: TermId) -> TermId {
        if let (Term::Int(x), Term::Int(y)) = (self.term(a), self.term(b)) {
            let (x, y) = (*x, *y);
            return self.int(x.wrapping_mul(y));
        }
        self.intern_term(Term::Mul(a, b))
    }

    /// ⊤.
    pub fn tru(&mut self) -> FormulaId {
        self.intern_formula(Formula::True)
    }

    /// ⊥.
    pub fn fls(&mut self) -> FormulaId {
        self.intern_formula(Formula::False)
    }

    /// `a ≤ b`, folding ground comparisons.
    pub fn le(&mut self, a: TermId, b: TermId) -> FormulaId {
        if let (Term::Int(x), Term::Int(y)) = (self.term(a), self.term(b)) {
            return if x <= y { self.tru() } else { self.fls() };
        }
        self.intern_formula(Formula::Le(a, b))
    }

    /// `a < b`, folding ground comparisons.
    pub fn lt(&mut self, a: TermId, b: TermId) -> FormulaId {
        if let (Term::Int(x), Term::Int(y)) = (self.term(a), self.term(b)) {
            return if x < y { self.tru() } else { self.fls() };
        }
        self.intern_formula(Formula::Lt(a, b))
    }

    /// `a = b`, folding ground and reflexive comparisons.
    pub fn eq(&mut self, a: TermId, b: TermId) -> FormulaId {
        if a == b {
            return self.tru();
        }
        if let (Term::Int(x), Term::Int(y)) = (self.term(a), self.term(b)) {
            return if x == y { self.tru() } else { self.fls() };
        }
        // Orient by id so `a = b` and `b = a` are the same node.
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.intern_formula(Formula::Eq(a, b))
    }

    /// `¬f`, with double-negation and constant elimination.
    pub fn not(&mut self, f: FormulaId) -> FormulaId {
        match self.formula(f) {
            Formula::True => self.fls(),
            Formula::False => self.tru(),
            Formula::Not(inner) => *inner,
            _ => self.intern_formula(Formula::Not(f)),
        }
    }

    /// `a ∧ b`, with unit/absorption laws.
    pub fn and(&mut self, a: FormulaId, b: FormulaId) -> FormulaId {
        match (self.formula(a), self.formula(b)) {
            (Formula::False, _) | (_, Formula::False) => self.fls(),
            (Formula::True, _) => b,
            (_, Formula::True) => a,
            _ if a == b => a,
            _ => {
                let (a, b) = if a <= b { (a, b) } else { (b, a) };
                self.intern_formula(Formula::And(a, b))
            }
        }
    }

    /// `a ∨ b`, with unit/absorption laws.
    pub fn or(&mut self, a: FormulaId, b: FormulaId) -> FormulaId {
        match (self.formula(a), self.formula(b)) {
            (Formula::True, _) | (_, Formula::True) => self.tru(),
            (Formula::False, _) => b,
            (_, Formula::False) => a,
            _ if a == b => a,
            _ => {
                let (a, b) = if a <= b { (a, b) } else { (b, a) };
                self.intern_formula(Formula::Or(a, b))
            }
        }
    }

    /// Conjunction of many formulas.
    pub fn and_all<I: IntoIterator<Item = FormulaId>>(&mut self, fs: I) -> FormulaId {
        let mut acc = self.tru();
        for f in fs {
            acc = self.and(acc, f);
        }
        acc
    }

    /// Disjunction of many formulas.
    pub fn or_all<I: IntoIterator<Item = FormulaId>>(&mut self, fs: I) -> FormulaId {
        let mut acc = self.fls();
        for f in fs {
            acc = self.or(acc, f);
        }
        acc
    }

    /// `a ⇒ b`.
    pub fn implies(&mut self, a: FormulaId, b: FormulaId) -> FormulaId {
        let na = self.not(a);
        self.or(na, b)
    }

    /// Renders a term for debugging.
    pub fn term_to_string(&self, id: TermId) -> String {
        let mut s = String::new();
        self.fmt_term(id, &mut s);
        s
    }

    fn fmt_term(&self, id: TermId, out: &mut String) {
        use fmt::Write as _;
        match self.term(id) {
            Term::Int(c) => {
                let _ = write!(out, "{c}");
            }
            Term::Var(v) => out.push_str(self.var_name(*v)),
            Term::App(f, args) => {
                out.push_str(self.fn_name(*f));
                out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    self.fmt_term(*a, out);
                }
                out.push(')');
            }
            Term::Add(a, b) => {
                out.push('(');
                self.fmt_term(*a, out);
                out.push_str(" + ");
                self.fmt_term(*b, out);
                out.push(')');
            }
            Term::Sub(a, b) => {
                out.push('(');
                self.fmt_term(*a, out);
                out.push_str(" - ");
                self.fmt_term(*b, out);
                out.push(')');
            }
            Term::Mul(a, b) => {
                out.push('(');
                self.fmt_term(*a, out);
                out.push_str(" * ");
                self.fmt_term(*b, out);
                out.push(')');
            }
        }
    }

    /// Renders a formula for debugging.
    pub fn formula_to_string(&self, id: FormulaId) -> String {
        match self.formula(id) {
            Formula::True => "true".to_owned(),
            Formula::False => "false".to_owned(),
            Formula::Le(a, b) => {
                format!("{} <= {}", self.term_to_string(*a), self.term_to_string(*b))
            }
            Formula::Lt(a, b) => {
                format!("{} < {}", self.term_to_string(*a), self.term_to_string(*b))
            }
            Formula::Eq(a, b) => {
                format!("{} = {}", self.term_to_string(*a), self.term_to_string(*b))
            }
            Formula::Not(f) => format!("!({})", self.formula_to_string(*f)),
            Formula::And(a, b) => format!(
                "({} && {})",
                self.formula_to_string(*a),
                self.formula_to_string(*b)
            ),
            Formula::Or(a, b) => format!(
                "({} || {})",
                self.formula_to_string(*a),
                self.formula_to_string(*b)
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_shares_nodes() {
        let mut ctx = Context::new();
        let x1 = ctx.int_var("x");
        let x2 = ctx.int_var("x");
        assert_eq!(x1, x2);
        let one = ctx.int(1);
        let a = ctx.add(x1, one);
        let b = ctx.add(x2, one);
        assert_eq!(a, b);
    }

    #[test]
    fn ground_folding() {
        let mut ctx = Context::new();
        let a = ctx.int(2);
        let b = ctx.int(3);
        assert_eq!(ctx.add(a, b), ctx.int(5));
        assert_eq!(ctx.mul(a, b), ctx.int(6));
        assert_eq!(ctx.le(a, b), ctx.tru());
        assert_eq!(ctx.lt(b, a), ctx.fls());
        assert_eq!(ctx.eq(a, a), ctx.tru());
    }

    #[test]
    fn connective_normalization() {
        let mut ctx = Context::new();
        let x = ctx.int_var("x");
        let zero = ctx.int(0);
        let p = ctx.le(x, zero);
        let t = ctx.tru();
        let f = ctx.fls();
        assert_eq!(ctx.and(p, t), p);
        assert_eq!(ctx.and(p, f), f);
        assert_eq!(ctx.or(p, f), p);
        assert_eq!(ctx.or(p, t), t);
        let np = ctx.not(p);
        assert_eq!(ctx.not(np), p);
        assert_eq!(ctx.and(p, p), p);
    }

    #[test]
    fn equality_is_oriented() {
        let mut ctx = Context::new();
        let x = ctx.int_var("x");
        let y = ctx.int_var("y");
        assert_eq!(ctx.eq(x, y), ctx.eq(y, x));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn app_checks_arity() {
        let mut ctx = Context::new();
        let f = ctx.fn_sym("f", 2);
        let x = ctx.int_var("x");
        let _ = ctx.app(f, vec![x]);
    }

    #[test]
    fn printing_is_readable() {
        let mut ctx = Context::new();
        let f = ctx.fn_sym("f", 1);
        let x = ctx.int_var("x");
        let fx = ctx.app(f, vec![x]);
        let one = ctx.int(1);
        let t = ctx.add(fx, one);
        let phi = ctx.lt(t, x);
        assert_eq!(ctx.formula_to_string(phi), "(f(x) + 1) < x");
    }
}
