//! Congruence closure for equality with uninterpreted functions (EUF).
//!
//! The solver registers every term occurring in the current literal set,
//! asserts the equalities, and closes under congruence
//! (`x̄ = ȳ ⇒ f(x̄) = f(ȳ)`) using the classic union-find + signature-table
//! algorithm. Disequalities are checked against the closure; asserting an
//! equality that contradicts a disequality (or vice versa) reports a
//! conflict.

use crate::ctx::{Context, Term, TermId};
use std::collections::HashMap;

/// Pseudo function symbols for interpreted operators (disjoint from real
/// [`crate::ctx::FnSym`] indices, which are dense from 0).
const BUILTIN_ADD: u32 = u32::MAX;
const BUILTIN_SUB: u32 = u32::MAX - 1;
const BUILTIN_MUL: u32 = u32::MAX - 2;

/// A congruence-closure instance over terms of one [`Context`].
#[derive(Debug, Default)]
pub struct Euf {
    /// Dense node index per registered term.
    node_of: HashMap<TermId, u32>,
    terms: Vec<TermId>,
    parent: Vec<u32>,
    rank: Vec<u32>,
    /// App nodes in which each node occurs as an argument.
    use_list: Vec<Vec<u32>>,
    /// For App nodes: (fn index, arg node indices); `None` for leaves.
    app: Vec<Option<(u32, Vec<u32>)>>,
    /// Signature table: (fn, arg representatives) → node.
    sig: HashMap<(u32, Vec<u32>), u32>,
    /// Asserted disequalities (node pairs).
    diseqs: Vec<(u32, u32)>,
    dirty: bool,
}

impl Euf {
    /// Creates an empty instance.
    pub fn new() -> Euf {
        Euf::default()
    }

    /// Registers `t` and all its subterms, returning the node index.
    pub fn add_term(&mut self, ctx: &Context, t: TermId) -> u32 {
        if let Some(&n) = self.node_of.get(&t) {
            return n;
        }
        let app_info = match ctx.term(t).clone() {
            Term::App(f, args) => {
                let arg_nodes: Vec<u32> = args.iter().map(|&a| self.add_term(ctx, a)).collect();
                Some((f.0, arg_nodes))
            }
            // Arithmetic nodes participate in congruence as if they were
            // applications of builtin symbols (`+`, `−`, `×` are functions,
            // so `x = x' ∧ y = y' ⇒ x+y = x'+y'` is sound). This lets the
            // closure derive most equalities without round-tripping through
            // the arithmetic solver. LIA still owns their *theory* meaning.
            Term::Add(a, b) => {
                let na = self.add_term(ctx, a);
                let nb = self.add_term(ctx, b);
                Some((BUILTIN_ADD, vec![na, nb]))
            }
            Term::Sub(a, b) => {
                let na = self.add_term(ctx, a);
                let nb = self.add_term(ctx, b);
                Some((BUILTIN_SUB, vec![na, nb]))
            }
            Term::Mul(a, b) => {
                let na = self.add_term(ctx, a);
                let nb = self.add_term(ctx, b);
                Some((BUILTIN_MUL, vec![na, nb]))
            }
            Term::Int(_) | Term::Var(_) => None,
        };
        let n = u32::try_from(self.terms.len()).expect("too many EUF nodes");
        self.terms.push(t);
        self.parent.push(n);
        self.rank.push(0);
        self.use_list.push(Vec::new());
        self.app.push(app_info.clone());
        self.node_of.insert(t, n);
        if let Some((f, args)) = app_info {
            for &a in &args {
                self.use_list[a as usize].push(n);
            }
            let sig_key = (f, args.iter().map(|&a| self.find(a)).collect::<Vec<_>>());
            if let Some(&existing) = self.sig.get(&sig_key) {
                // Congruent to an existing application: merge immediately.
                self.union(existing, n);
            } else {
                self.sig.insert(sig_key, n);
            }
        }
        // Distinct integer constants are disequal by theory.
        n
    }

    fn find(&self, mut n: u32) -> u32 {
        while self.parent[n as usize] != n {
            n = self.parent[n as usize];
        }
        n
    }

    fn find_compress(&mut self, n: u32) -> u32 {
        let root = self.find(n);
        let mut cur = n;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: u32, b: u32) {
        let mut pending = vec![(a, b)];
        while let Some((x, y)) = pending.pop() {
            let (rx, ry) = (self.find_compress(x), self.find_compress(y));
            if rx == ry {
                continue;
            }
            let (winner, loser) = if self.rank[rx as usize] >= self.rank[ry as usize] {
                (rx, ry)
            } else {
                (ry, rx)
            };
            if self.rank[winner as usize] == self.rank[loser as usize] {
                self.rank[winner as usize] += 1;
            }
            self.parent[loser as usize] = winner;
            self.dirty = true;
            // Re-hash every application that used the loser's class.
            let users = std::mem::take(&mut self.use_list[loser as usize]);
            for &u in &users {
                let (f, args) = self.app[u as usize].clone().expect("user is an App node");
                let key = (
                    f,
                    args.iter().map(|&n| self.find(n)).collect::<Vec<u32>>(),
                );
                if let Some(&other) = self.sig.get(&key) {
                    if self.find(other) != self.find(u) {
                        pending.push((other, u));
                    }
                } else {
                    self.sig.insert(key, u);
                }
            }
            self.use_list[winner as usize].extend(users);
        }
    }

    /// Asserts `a = b`. Returns `false` when this contradicts an asserted
    /// disequality or the distinctness of integer constants.
    pub fn merge(&mut self, ctx: &Context, a: TermId, b: TermId) -> bool {
        let (na, nb) = (self.add_term(ctx, a), self.add_term(ctx, b));
        self.union(na, nb);
        self.consistent(ctx)
    }

    /// Asserts `a ≠ b`. Returns `false` when `a` and `b` are already equal.
    pub fn add_diseq(&mut self, ctx: &Context, a: TermId, b: TermId) -> bool {
        let (na, nb) = (self.add_term(ctx, a), self.add_term(ctx, b));
        self.diseqs.push((na, nb));
        self.consistent(ctx)
    }

    /// Whether `a = b` follows from the asserted equalities by congruence.
    /// Both terms must have been registered.
    pub fn equal(&self, a: TermId, b: TermId) -> bool {
        match (self.node_of.get(&a), self.node_of.get(&b)) {
            (Some(&na), Some(&nb)) => self.find(na) == self.find(nb),
            _ => false,
        }
    }

    /// Checks all disequalities and built-in constant distinctness.
    pub fn consistent(&mut self, ctx: &Context) -> bool {
        for &(a, b) in &self.diseqs {
            if self.find(a) == self.find(b) {
                return false;
            }
        }
        // Two distinct integer constants in one class is a conflict.
        let mut const_of_class: HashMap<u32, i64> = HashMap::new();
        for n in 0..self.terms.len() {
            if let Term::Int(c) = ctx.term(self.terms[n]) {
                let root = self.find(u32::try_from(n).expect("node index fits"));
                if let Some(&prev) = const_of_class.get(&root) {
                    if prev != *c {
                        return false;
                    }
                } else {
                    const_of_class.insert(root, *c);
                }
            }
        }
        true
    }

    /// All registered terms (for equality propagation in the combination
    /// loop).
    pub fn registered_terms(&self) -> &[TermId] {
        &self.terms
    }

    /// Opaque class identifier of a registered term: two registered terms are
    /// equal under the closure iff their class ids coincide.
    pub fn class_id(&self, t: TermId) -> Option<u32> {
        self.node_of.get(&t).map(|&n| self.find(n))
    }

    /// Clears and returns whether any merge happened since the last call
    /// (used by the Nelson–Oppen fixpoint loop).
    pub fn take_dirty(&mut self) -> bool {
        std::mem::take(&mut self.dirty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn congruence_propagates_through_apps() {
        let mut ctx = Context::new();
        let f = ctx.fn_sym("f", 1);
        let x = ctx.int_var("x");
        let y = ctx.int_var("y");
        let fx = ctx.app(f, vec![x]);
        let fy = ctx.app(f, vec![y]);
        let mut e = Euf::new();
        e.add_term(&ctx, fx);
        e.add_term(&ctx, fy);
        assert!(!e.equal(fx, fy));
        assert!(e.merge(&ctx, x, y));
        assert!(e.equal(fx, fy));
    }

    #[test]
    fn nested_congruence() {
        // x = y ⇒ g(f(x), x) = g(f(y), y)
        let mut ctx = Context::new();
        let f = ctx.fn_sym("f", 1);
        let g = ctx.fn_sym("g", 2);
        let x = ctx.int_var("x");
        let y = ctx.int_var("y");
        let fx = ctx.app(f, vec![x]);
        let fy = ctx.app(f, vec![y]);
        let gx = ctx.app(g, vec![fx, x]);
        let gy = ctx.app(g, vec![fy, y]);
        let mut e = Euf::new();
        e.add_term(&ctx, gx);
        e.add_term(&ctx, gy);
        assert!(e.merge(&ctx, x, y));
        assert!(e.equal(gx, gy));
    }

    #[test]
    fn diseq_conflict_detected() {
        let mut ctx = Context::new();
        let x = ctx.int_var("x");
        let y = ctx.int_var("y");
        let z = ctx.int_var("z");
        let mut e = Euf::new();
        assert!(e.add_diseq(&ctx, x, z));
        assert!(e.merge(&ctx, x, y));
        // y = z would close the cycle x = y = z against x ≠ z.
        assert!(!e.merge(&ctx, y, z));
    }

    #[test]
    fn distinct_constants_conflict() {
        let mut ctx = Context::new();
        let x = ctx.int_var("x");
        let one = ctx.int(1);
        let two = ctx.int(2);
        let mut e = Euf::new();
        assert!(e.merge(&ctx, x, one));
        assert!(!e.merge(&ctx, x, two));
    }

    #[test]
    fn transitivity_of_function_chain() {
        // f(a)=b, f(b)=c, a=b ⇒ b=c.
        let mut ctx = Context::new();
        let f = ctx.fn_sym("f", 1);
        let a = ctx.int_var("a");
        let b = ctx.int_var("b");
        let c = ctx.int_var("c");
        let fa = ctx.app(f, vec![a]);
        let fb = ctx.app(f, vec![b]);
        let mut e = Euf::new();
        assert!(e.merge(&ctx, fa, b));
        assert!(e.merge(&ctx, fb, c));
        assert!(e.merge(&ctx, a, b));
        assert!(e.equal(b, c));
    }

    #[test]
    fn apps_inside_arithmetic_are_registered() {
        // EUF must see f(x) inside f(x)+1.
        let mut ctx = Context::new();
        let f = ctx.fn_sym("f", 1);
        let x = ctx.int_var("x");
        let y = ctx.int_var("y");
        let fx = ctx.app(f, vec![x]);
        let one = ctx.int(1);
        let sum = ctx.add(fx, one);
        let fy = ctx.app(f, vec![y]);
        let mut e = Euf::new();
        e.add_term(&ctx, sum);
        e.add_term(&ctx, fy);
        assert!(e.merge(&ctx, x, y));
        assert!(e.equal(fx, fy));
    }

    #[test]
    fn identical_apps_are_merged_on_registration() {
        let mut ctx = Context::new();
        let f = ctx.fn_sym("f", 1);
        let x = ctx.int_var("x");
        let y = ctx.int_var("y");
        let mut e = Euf::new();
        // Register f(x) and f(y) with x=y already asserted: registering the
        // second app must land in the same class.
        let fx = ctx.app(f, vec![x]);
        e.add_term(&ctx, fx);
        assert!(e.merge(&ctx, x, y));
        let fy = ctx.app(f, vec![y]);
        e.add_term(&ctx, fy);
        assert!(e.equal(fx, fy));
    }
}
