//! A from-scratch *lazy SMT solver* for the combined theory of linear integer
//! arithmetic (LIA) and equality with uninterpreted functions (EUF).
//!
//! The PLDI 2014 consolidation paper discharges its entailment obligations
//! (`Ψ ⊨ e`, `Ψ ⊨ e = e'`, loop-invariant checks) with Z3. This crate plays
//! that role with a self-contained implementation:
//!
//! * [`ctx`] — hash-consed terms and formulas ([`Context`]),
//! * [`canon`] — context-independent canonical hashing of entailment
//!   queries, the key basis for cross-thread memoization,
//! * [`cnf`] — NNF conversion and Tseitin CNF over theory atoms,
//! * [`sat`] — a CDCL SAT core (watched literals, first-UIP learning, VSIDS),
//! * [`euf`] — congruence closure for uninterpreted functions,
//! * [`rational`] — exact `i128` rationals for the simplex,
//! * [`simplex`] — a Dutertre–de Moura style general simplex with integer
//!   branch-and-bound and disequality splitting,
//! * [`theory`] — literal translation and the Nelson–Oppen-style equality
//!   exchange between EUF and LIA,
//! * [`solver`] — the top loop: SAT search with theory *final checks* and
//!   blocking-clause learning.
//!
//! # Incompleteness policy
//!
//! Integer arithmetic with branching is decidable but the solver bounds its
//! branch-and-bound depth; on resource exhaustion it returns
//! [`SatResult::Unknown`]. Callers that ask *validity* questions
//! ([`Solver::is_valid`]) treat `Unknown` as "not proved". In the
//! consolidation setting this can only make the optimizer *miss* a rewrite —
//! it can never justify an unsound one, because rewrites require a proof of
//! `Unsat` for the negated obligation.
//!
//! # Example
//!
//! ```
//! use udf_smt::{Context, Solver, SatResult};
//!
//! let mut ctx = Context::new();
//! let x = ctx.int_var("x");
//! let f = ctx.fn_sym("f", 1);
//! let fx = ctx.app(f, vec![x]);
//! let c7 = ctx.int(7);
//! // x = 7 ∧ f(x) ≠ f(7) is unsatisfiable by congruence.
//! let x_eq_7 = ctx.eq(x, c7);
//! let f7 = ctx.app(f, vec![c7]);
//! let neq = {
//!     let e = ctx.eq(fx, f7);
//!     ctx.not(e)
//! };
//! let phi = ctx.and(x_eq_7, neq);
//! let mut solver = Solver::new();
//! assert_eq!(solver.check(&mut ctx, phi), SatResult::Unsat);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod canon;
pub mod cnf;
pub mod ctx;
pub mod euf;
pub mod rational;
pub mod sat;
pub mod simplex;
pub mod solver;
pub mod theory;

pub use ctx::{Context, FnSym, FormulaId, TermId, VarId};
pub use solver::{SatResult, Solver, SolverStats};
