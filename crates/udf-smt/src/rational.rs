//! Exact rational arithmetic over `i128` with overflow detection.
//!
//! The simplex works over rationals; every operation is checked and
//! overflow surfaces as `None`, which the solver maps to
//! [`crate::solver::SatResult::Unknown`] (never to a wrong answer).

use std::cmp::Ordering;
use std::fmt;

/// A rational number `num/den` with `den > 0`, always in lowest terms.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Rat {
    num: i128,
    den: i128,
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.abs()
}

impl Rat {
    /// Zero.
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    /// One.
    pub const ONE: Rat = Rat { num: 1, den: 1 };

    /// Creates `num/den` in lowest terms. Returns `None` if `den == 0`.
    pub fn new(num: i128, den: i128) -> Option<Rat> {
        if den == 0 {
            return None;
        }
        let g = gcd(num, den);
        let (mut num, mut den) = if g == 0 { (0, 1) } else { (num / g, den / g) };
        if den < 0 {
            num = num.checked_neg()?;
            den = den.checked_neg()?;
        }
        Some(Rat { num, den })
    }

    /// Creates an integer rational.
    pub fn int(n: i128) -> Rat {
        Rat { num: n, den: 1 }
    }

    /// Numerator.
    pub fn num(self) -> i128 {
        self.num
    }

    /// Denominator (always positive).
    pub fn den(self) -> i128 {
        self.den
    }

    /// Whether the value is an integer.
    pub fn is_integer(self) -> bool {
        self.den == 1
    }

    /// Whether the value is zero.
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// Sign: -1, 0, or 1.
    pub fn signum(self) -> i32 {
        match self.num.cmp(&0) {
            Ordering::Less => -1,
            Ordering::Equal => 0,
            Ordering::Greater => 1,
        }
    }

    /// Floor as an integer.
    pub fn floor(self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// Ceiling as an integer.
    pub fn ceil(self) -> i128 {
        -((-self.num).div_euclid(self.den))
    }

    /// Checked addition.
    pub fn checked_add(self, o: Rat) -> Option<Rat> {
        let n = self
            .num
            .checked_mul(o.den)?
            .checked_add(o.num.checked_mul(self.den)?)?;
        Rat::new(n, self.den.checked_mul(o.den)?)
    }

    /// Checked subtraction.
    pub fn checked_sub(self, o: Rat) -> Option<Rat> {
        self.checked_add(Rat {
            num: o.num.checked_neg()?,
            den: o.den,
        })
    }

    /// Checked multiplication.
    pub fn checked_mul(self, o: Rat) -> Option<Rat> {
        // Cross-reduce first to keep magnitudes small.
        let g1 = gcd(self.num, o.den).max(1);
        let g2 = gcd(o.num, self.den).max(1);
        let n = (self.num / g1).checked_mul(o.num / g2)?;
        let d = (self.den / g2).checked_mul(o.den / g1)?;
        Rat::new(n, d)
    }

    /// Checked division. `None` on division by zero or overflow.
    pub fn checked_div(self, o: Rat) -> Option<Rat> {
        if o.num == 0 {
            return None;
        }
        self.checked_mul(Rat::new(o.den, o.num)?)
    }

    /// Checked negation.
    pub fn checked_neg(self) -> Option<Rat> {
        Some(Rat {
            num: self.num.checked_neg()?,
            den: self.den,
        })
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Rat) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Rat) -> Ordering {
        // a/b vs c/d with b,d > 0 — compare a*d vs c*b. Overflow here is a
        // genuine possibility only with astronomically large pivots; fall
        // back to f64 comparison with exact tie-break in that case is unsound,
        // so instead saturate through i128→f64 only when equality is
        // impossible. In practice, checked ops upstream keep magnitudes small.
        match (
            self.num.checked_mul(other.den),
            other.num.checked_mul(self.den),
        ) {
            (Some(l), Some(r)) => l.cmp(&r),
            _ => {
                let l = self.num as f64 / self.den as f64;
                let r = other.num as f64 / other.den as f64;
                l.partial_cmp(&r).unwrap_or(Ordering::Equal)
            }
        }
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        let r = Rat::new(2, 4).unwrap();
        assert_eq!((r.num(), r.den()), (1, 2));
        let r = Rat::new(3, -6).unwrap();
        assert_eq!((r.num(), r.den()), (-1, 2));
        assert_eq!(Rat::new(0, 5).unwrap(), Rat::ZERO);
        assert!(Rat::new(1, 0).is_none());
    }

    #[test]
    fn arithmetic() {
        let a = Rat::new(1, 2).unwrap();
        let b = Rat::new(1, 3).unwrap();
        assert_eq!(a.checked_add(b).unwrap(), Rat::new(5, 6).unwrap());
        assert_eq!(a.checked_sub(b).unwrap(), Rat::new(1, 6).unwrap());
        assert_eq!(a.checked_mul(b).unwrap(), Rat::new(1, 6).unwrap());
        assert_eq!(a.checked_div(b).unwrap(), Rat::new(3, 2).unwrap());
        assert!(a.checked_div(Rat::ZERO).is_none());
    }

    #[test]
    fn ordering() {
        let a = Rat::new(1, 3).unwrap();
        let b = Rat::new(1, 2).unwrap();
        assert!(a < b);
        assert!(Rat::int(-1) < Rat::ZERO);
        assert_eq!(Rat::new(2, 4).unwrap().cmp(&Rat::new(1, 2).unwrap()), Ordering::Equal);
    }

    #[test]
    fn floor_and_ceil() {
        assert_eq!(Rat::new(7, 2).unwrap().floor(), 3);
        assert_eq!(Rat::new(7, 2).unwrap().ceil(), 4);
        assert_eq!(Rat::new(-7, 2).unwrap().floor(), -4);
        assert_eq!(Rat::new(-7, 2).unwrap().ceil(), -3);
        assert_eq!(Rat::int(5).floor(), 5);
        assert_eq!(Rat::int(5).ceil(), 5);
    }

    #[test]
    fn integrality() {
        assert!(Rat::int(3).is_integer());
        assert!(!Rat::new(3, 2).unwrap().is_integer());
    }

    #[test]
    fn overflow_is_detected() {
        let big = Rat::int(i128::MAX);
        assert!(big.checked_add(Rat::ONE).is_none());
        assert!(big.checked_mul(Rat::int(2)).is_none());
    }
}
