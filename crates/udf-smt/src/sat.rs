//! A CDCL SAT solver: two-watched-literal propagation, first-UIP conflict
//! analysis with clause learning, VSIDS-style activity ordering, phase
//! saving, and geometric restarts.
//!
//! The solver is used *enumeratively* by the SMT layer: each satisfying
//! assignment is subjected to a theory final-check, and theory conflicts come
//! back as blocking clauses via [`SatSolver::add_clause`], after which the
//! search resumes.

use std::fmt;

/// A boolean variable (dense index).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Var(pub u32);

/// A literal: a variable with a sign. Encoded as `var << 1 | negated`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// Positive literal of `v`.
    pub fn pos(v: Var) -> Lit {
        Lit(v.0 << 1)
    }

    /// Negative literal of `v`.
    pub fn neg(v: Var) -> Lit {
        Lit(v.0 << 1 | 1)
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether this is the negated literal.
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// Logical negation.
    #[must_use]
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", if self.is_neg() { "¬" } else { "" }, self.var().0)
    }
}

/// Tri-state assignment value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum LBool {
    True,
    False,
    Undef,
}

/// Outcome of a SAT search.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SatOutcome {
    /// A satisfying assignment was found (read it with [`SatSolver::value`]).
    Sat,
    /// The clause set is unsatisfiable.
    Unsat,
    /// The conflict budget was exhausted.
    Unknown,
}

#[derive(Clone, Debug)]
struct Clause {
    lits: Vec<Lit>,
}

/// The CDCL solver.
#[derive(Debug)]
pub struct SatSolver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<u32>>, // literal index -> clause indices watching it
    assign: Vec<LBool>,     // per var
    phase: Vec<bool>,       // saved phase per var
    level: Vec<u32>,        // per var
    reason: Vec<Option<u32>>, // per var: clause that implied it
    trail: Vec<Lit>,
    trail_lim: Vec<usize>, // decision level boundaries
    prop_head: usize,
    activity: Vec<f64>,
    act_inc: f64,
    ok: bool,
    conflicts: u64,
    decisions: u64,
    propagations: u64,
}

/// Search statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SatStats {
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of literal propagations.
    pub propagations: u64,
}

impl Default for SatSolver {
    fn default() -> SatSolver {
        SatSolver::new()
    }
}

impl SatSolver {
    /// Creates an empty solver.
    pub fn new() -> SatSolver {
        SatSolver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            phase: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            prop_head: 0,
            activity: Vec::new(),
            act_inc: 1.0,
            ok: true,
            conflicts: 0,
            decisions: 0,
            propagations: 0,
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(u32::try_from(self.assign.len()).expect("too many SAT variables"));
        self.assign.push(LBool::Undef);
        self.phase.push(false);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        v
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Current decision level.
    fn decision_level(&self) -> u32 {
        u32::try_from(self.trail_lim.len()).expect("level overflow")
    }

    fn lit_value(&self, l: Lit) -> LBool {
        match self.assign[l.var().0 as usize] {
            LBool::Undef => LBool::Undef,
            LBool::True => {
                if l.is_neg() {
                    LBool::False
                } else {
                    LBool::True
                }
            }
            LBool::False => {
                if l.is_neg() {
                    LBool::True
                } else {
                    LBool::False
                }
            }
        }
    }

    /// Value of `v` in the last satisfying assignment (valid right after
    /// [`SatOutcome::Sat`]).
    pub fn value(&self, v: Var) -> bool {
        matches!(self.assign[v.0 as usize], LBool::True)
    }

    /// Adds a clause. Duplicate literals are merged; tautologies are ignored.
    /// Adding the empty clause (or a clause falsified at level 0) makes the
    /// instance permanently unsatisfiable.
    ///
    /// May be called between [`SatSolver::solve`] invocations (the trail is
    /// rewound to level 0 first), which is how theory blocking clauses are
    /// installed.
    pub fn add_clause(&mut self, lits: &[Lit]) {
        if !self.ok {
            return;
        }
        self.backtrack_to(0);
        let mut ls: Vec<Lit> = lits.to_vec();
        ls.sort_unstable();
        ls.dedup();
        // Tautology?
        for w in ls.windows(2) {
            if w[0].var() == w[1].var() {
                return; // contains l and ¬l
            }
        }
        // Remove literals already false at level 0; satisfied clauses are
        // dropped.
        let mut filtered = Vec::with_capacity(ls.len());
        for &l in &ls {
            match self.lit_value(l) {
                LBool::True => return,
                LBool::False => {}
                LBool::Undef => filtered.push(l),
            }
        }
        match filtered.len() {
            0 => {
                self.ok = false;
            }
            1 => {
                self.enqueue(filtered[0], None);
                if self.propagate().is_some() {
                    self.ok = false;
                }
            }
            _ => {
                let ci = u32::try_from(self.clauses.len()).expect("too many clauses");
                self.watches[filtered[0].negate().index()].push(ci);
                self.watches[filtered[1].negate().index()].push(ci);
                self.clauses.push(Clause { lits: filtered });
            }
        }
    }

    fn enqueue(&mut self, l: Lit, reason: Option<u32>) {
        let v = l.var().0 as usize;
        debug_assert_eq!(self.assign[v], LBool::Undef);
        self.assign[v] = if l.is_neg() { LBool::False } else { LBool::True };
        self.phase[v] = !l.is_neg();
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(l);
    }

    /// Unit propagation; returns a conflicting clause index if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.prop_head < self.trail.len() {
            let p = self.trail[self.prop_head];
            self.prop_head += 1;
            self.propagations += 1;
            // Clauses watching ¬p must be visited: we stored watchers under
            // the *negation* index at registration time, i.e. watches[l.negate()]
            // holds clauses that watch l. When p becomes true, clauses
            // watching ¬p may become unit.
            let mut i = 0;
            let widx = p.index();
            while i < self.watches[widx].len() {
                let ci = self.watches[widx][i];
                let w0 = self.clauses[ci as usize].lits[0];
                // Normalize: ensure the false literal (¬p) is at position 1.
                let false_lit = p.negate();
                if w0 == false_lit {
                    self.clauses[ci as usize].lits.swap(0, 1);
                }
                let first = self.clauses[ci as usize].lits[0];
                debug_assert_eq!(self.clauses[ci as usize].lits[1], false_lit);
                if self.lit_value(first) == LBool::True {
                    i += 1;
                    continue;
                }
                // Find a new literal to watch.
                let mut moved = false;
                let len = self.clauses[ci as usize].lits.len();
                for k in 2..len {
                    let lk = self.clauses[ci as usize].lits[k];
                    if self.lit_value(lk) != LBool::False {
                        self.clauses[ci as usize].lits.swap(1, k);
                        self.watches[widx].swap_remove(i);
                        self.watches[lk.negate().index()].push(ci);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Clause is unit or conflicting.
                match self.lit_value(first) {
                    LBool::False => {
                        self.prop_head = self.trail.len();
                        return Some(ci);
                    }
                    LBool::Undef => {
                        self.enqueue(first, Some(ci));
                        i += 1;
                    }
                    LBool::True => {
                        i += 1;
                    }
                }
            }
        }
        None
    }

    fn bump(&mut self, v: Var) {
        let a = &mut self.activity[v.0 as usize];
        *a += self.act_inc;
        if *a > 1e100 {
            for x in &mut self.activity {
                *x *= 1e-100;
            }
            self.act_inc *= 1e-100;
        }
    }

    /// First-UIP conflict analysis. Returns (learned clause, backjump level).
    fn analyze(&mut self, confl: u32) -> (Vec<Lit>, u32) {
        let mut learned: Vec<Lit> = vec![Lit::pos(Var(0))]; // placeholder slot 0
        let mut seen = vec![false; self.num_vars()];
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut idx = self.trail.len();
        let mut reason_clause = confl;
        let cur_level = self.decision_level();

        loop {
            let start = usize::from(p.is_some());
            let lits: Vec<Lit> = self.clauses[reason_clause as usize].lits[start..].to_vec();
            for q in lits {
                let v = q.var();
                if !seen[v.0 as usize] && self.level[v.0 as usize] > 0 {
                    seen[v.0 as usize] = true;
                    self.bump(v);
                    if self.level[v.0 as usize] >= cur_level {
                        counter += 1;
                    } else {
                        learned.push(q);
                    }
                }
            }
            // Pick next literal on the trail to resolve.
            loop {
                idx -= 1;
                let l = self.trail[idx];
                if seen[l.var().0 as usize] {
                    p = Some(l);
                    break;
                }
            }
            let pv = p.expect("found trail literal").var();
            seen[pv.0 as usize] = false;
            counter -= 1;
            if counter == 0 {
                learned[0] = p.expect("UIP literal").negate();
                break;
            }
            reason_clause = self.reason[pv.0 as usize].expect("non-decision has a reason");
        }

        // Backjump level = max level among learned[1..].
        let mut bj = 0;
        let mut max_i = 0;
        for (i, l) in learned.iter().enumerate().skip(1) {
            let lv = self.level[l.var().0 as usize];
            if lv > bj {
                bj = lv;
                max_i = i;
            }
        }
        if max_i > 0 {
            learned.swap(1, max_i);
        }
        (learned, bj)
    }

    fn backtrack_to(&mut self, level: u32) {
        while self.decision_level() > level {
            let lim = self.trail_lim.pop().expect("level > 0 has a limit");
            while self.trail.len() > lim {
                let l = self.trail.pop().expect("trail non-empty");
                let v = l.var().0 as usize;
                self.assign[v] = LBool::Undef;
                self.reason[v] = None;
            }
        }
        self.prop_head = self.trail.len().min(self.prop_head);
        if level == 0 {
            self.prop_head = self.prop_head.min(self.trail.len());
        }
    }

    fn pick_branch(&mut self) -> Option<Var> {
        let mut best: Option<(Var, f64)> = None;
        for (i, &a) in self.assign.iter().enumerate() {
            if a == LBool::Undef {
                let v = Var(u32::try_from(i).expect("var index fits u32"));
                let act = self.activity[i];
                match best {
                    Some((_, b)) if b >= act => {}
                    _ => best = Some((v, act)),
                }
            }
        }
        best.map(|(v, _)| v)
    }

    /// Searches for a satisfying assignment, up to `max_conflicts` conflicts.
    pub fn solve(&mut self, max_conflicts: u64) -> SatOutcome {
        if !self.ok {
            return SatOutcome::Unsat;
        }
        self.backtrack_to(0);
        self.prop_head = 0;
        if self.propagate().is_some() {
            self.ok = false;
            return SatOutcome::Unsat;
        }
        let mut budget = max_conflicts;
        loop {
            if let Some(confl) = self.propagate() {
                self.conflicts += 1;
                if budget == 0 {
                    return SatOutcome::Unknown;
                }
                budget -= 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SatOutcome::Unsat;
                }
                let (learned, bj) = self.analyze(confl);
                self.backtrack_to(bj);
                self.act_inc /= 0.95;
                if learned.len() == 1 {
                    self.enqueue(learned[0], None);
                } else {
                    let ci = u32::try_from(self.clauses.len()).expect("too many clauses");
                    self.watches[learned[0].negate().index()].push(ci);
                    self.watches[learned[1].negate().index()].push(ci);
                    let unit = learned[0];
                    self.clauses.push(Clause { lits: learned });
                    self.enqueue(unit, Some(ci));
                }
            } else {
                match self.pick_branch() {
                    None => return SatOutcome::Sat,
                    Some(v) => {
                        self.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let saved = self.phase[v.0 as usize];
                        let l = if saved { Lit::pos(v) } else { Lit::neg(v) };
                        self.enqueue(l, None);
                    }
                }
            }
        }
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> SatStats {
        SatStats {
            conflicts: self.conflicts,
            decisions: self.decisions,
            propagations: self.propagations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(s: &mut SatSolver, n: usize) -> Vec<Var> {
        (0..n).map(|_| s.new_var()).collect()
    }

    #[test]
    fn trivially_sat() {
        let mut s = SatSolver::new();
        let v = lits(&mut s, 2);
        s.add_clause(&[Lit::pos(v[0]), Lit::pos(v[1])]);
        assert_eq!(s.solve(1000), SatOutcome::Sat);
        assert!(s.value(v[0]) || s.value(v[1]));
    }

    #[test]
    fn contradiction_is_unsat() {
        let mut s = SatSolver::new();
        let v = lits(&mut s, 1);
        s.add_clause(&[Lit::pos(v[0])]);
        s.add_clause(&[Lit::neg(v[0])]);
        assert_eq!(s.solve(1000), SatOutcome::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = SatSolver::new();
        let _ = lits(&mut s, 1);
        s.add_clause(&[]);
        assert_eq!(s.solve(1000), SatOutcome::Unsat);
    }

    #[test]
    fn chain_implication_forces_assignment() {
        // (¬x0 ∨ x1)(¬x1 ∨ x2)…(¬x8 ∨ x9), x0 unit; x9 must be true.
        let mut s = SatSolver::new();
        let v = lits(&mut s, 10);
        s.add_clause(&[Lit::pos(v[0])]);
        for i in 0..9 {
            s.add_clause(&[Lit::neg(v[i]), Lit::pos(v[i + 1])]);
        }
        assert_eq!(s.solve(1000), SatOutcome::Sat);
        for &x in &v {
            assert!(s.value(x));
        }
    }

    #[test]
    fn pigeonhole_2_into_1_is_unsat() {
        // Two pigeons, one hole: p0h0, p1h0, ¬p0h0 ∨ ¬p1h0.
        let mut s = SatSolver::new();
        let v = lits(&mut s, 2);
        s.add_clause(&[Lit::pos(v[0])]);
        s.add_clause(&[Lit::pos(v[1])]);
        s.add_clause(&[Lit::neg(v[0]), Lit::neg(v[1])]);
        assert_eq!(s.solve(1000), SatOutcome::Unsat);
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // 3 pigeons, 2 holes. Var p*2+h.
        let mut s = SatSolver::new();
        let v = lits(&mut s, 6);
        for p in 0..3usize {
            s.add_clause(&[Lit::pos(v[p * 2]), Lit::pos(v[p * 2 + 1])]);
        }
        for h in 0..2usize {
            for p1 in 0..3usize {
                for p2 in (p1 + 1)..3usize {
                    s.add_clause(&[Lit::neg(v[p1 * 2 + h]), Lit::neg(v[p2 * 2 + h])]);
                }
            }
        }
        assert_eq!(s.solve(10_000), SatOutcome::Unsat);
    }

    #[test]
    fn blocking_clauses_enumerate_models() {
        // 2 free vars: exactly 4 models; blocking each should yield UNSAT
        // after 4 iterations.
        let mut s = SatSolver::new();
        let v = lits(&mut s, 2);
        s.add_clause(&[Lit::pos(v[0]), Lit::neg(v[0])]); // touch watches
        let mut models = 0;
        loop {
            match s.solve(10_000) {
                SatOutcome::Sat => {
                    models += 1;
                    assert!(models <= 4, "enumerated too many models");
                    let block: Vec<Lit> = v
                        .iter()
                        .map(|&x| if s.value(x) { Lit::neg(x) } else { Lit::pos(x) })
                        .collect();
                    s.add_clause(&block);
                }
                SatOutcome::Unsat => break,
                SatOutcome::Unknown => panic!("unexpected unknown"),
            }
        }
        assert_eq!(models, 4);
    }

    #[test]
    fn budget_exhaustion_returns_unknown() {
        // A hard-ish random-looking instance with budget 0 conflicts returns
        // Unknown only if a conflict occurs; with a satisfiable instance and
        // no conflicts it may return Sat. Use an UNSAT core with budget 0.
        let mut s = SatSolver::new();
        let v = lits(&mut s, 3);
        // XOR-ish constraints that need at least one conflict.
        s.add_clause(&[Lit::pos(v[0]), Lit::pos(v[1]), Lit::pos(v[2])]);
        s.add_clause(&[Lit::pos(v[0]), Lit::neg(v[1]), Lit::neg(v[2])]);
        s.add_clause(&[Lit::neg(v[0]), Lit::pos(v[1]), Lit::neg(v[2])]);
        s.add_clause(&[Lit::neg(v[0]), Lit::neg(v[1]), Lit::pos(v[2])]);
        s.add_clause(&[Lit::neg(v[0]), Lit::neg(v[1]), Lit::neg(v[2])]);
        s.add_clause(&[Lit::pos(v[0]), Lit::pos(v[1]), Lit::neg(v[2])]);
        s.add_clause(&[Lit::pos(v[0]), Lit::neg(v[1]), Lit::pos(v[2])]);
        s.add_clause(&[Lit::neg(v[0]), Lit::pos(v[1]), Lit::pos(v[2])]);
        assert_eq!(s.solve(0), SatOutcome::Unknown);
        assert_eq!(s.solve(1000), SatOutcome::Unsat);
    }

    #[test]
    fn duplicate_and_tautological_clauses_are_handled() {
        let mut s = SatSolver::new();
        let v = lits(&mut s, 2);
        s.add_clause(&[Lit::pos(v[0]), Lit::pos(v[0])]); // dup → unit
        s.add_clause(&[Lit::pos(v[1]), Lit::neg(v[1])]); // tautology → dropped
        assert_eq!(s.solve(100), SatOutcome::Sat);
        assert!(s.value(v[0]));
    }
}
