//! Linear integer arithmetic via general simplex + branch-and-bound.
//!
//! The rational core is the Dutertre–de Moura *general simplex*: every
//! constraint `Σ cᵢxᵢ ⊲ b` gets a slack variable `s = Σ cᵢxᵢ` and a bound on
//! `s`; feasibility is restored by pivoting with Bland's rule (which
//! guarantees termination). Integrality is then enforced by branch-and-bound
//! on fractional variables, and disequalities `e ≠ 0` by splitting into
//! `e ≤ −1 ∨ e ≥ 1` (sound for integer-valued expressions).
//!
//! All arithmetic is exact (checked `i128` rationals); overflow and
//! branching-budget exhaustion surface as [`LiaResult::Unknown`].

use crate::rational::Rat;
use std::collections::BTreeMap;

/// A linear expression `Σ coeffs[v]·x_v + constant`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinExpr {
    /// Coefficients per variable index (no zero entries).
    pub coeffs: BTreeMap<usize, Rat>,
    /// Constant offset.
    pub constant: Rat,
}

impl Default for LinExpr {
    fn default() -> LinExpr {
        LinExpr::zero()
    }
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> LinExpr {
        LinExpr {
            coeffs: BTreeMap::new(),
            constant: Rat::ZERO,
        }
    }

    /// A constant expression.
    pub fn constant(c: Rat) -> LinExpr {
        LinExpr {
            coeffs: BTreeMap::new(),
            constant: c,
        }
    }

    /// The expression `x_v`.
    pub fn var(v: usize) -> LinExpr {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(v, Rat::ONE);
        LinExpr {
            coeffs,
            constant: Rat::ZERO,
        }
    }

    /// Adds `c·x_v` in place. Returns `None` on overflow.
    pub fn add_term(&mut self, v: usize, c: Rat) -> Option<()> {
        let entry = self.coeffs.entry(v).or_insert(Rat::ZERO);
        *entry = entry.checked_add(c)?;
        if entry.is_zero() {
            self.coeffs.remove(&v);
        }
        Some(())
    }

    /// `self + other`. Returns `None` on overflow.
    pub fn checked_add(&self, other: &LinExpr) -> Option<LinExpr> {
        let mut out = self.clone();
        for (&v, &c) in &other.coeffs {
            out.add_term(v, c)?;
        }
        out.constant = out.constant.checked_add(other.constant)?;
        Some(out)
    }

    /// `self − other`. Returns `None` on overflow.
    pub fn checked_sub(&self, other: &LinExpr) -> Option<LinExpr> {
        let neg = other.checked_scale(Rat::int(-1))?;
        self.checked_add(&neg)
    }

    /// `k · self`. Returns `None` on overflow.
    pub fn checked_scale(&self, k: Rat) -> Option<LinExpr> {
        let mut out = LinExpr::zero();
        for (&v, &c) in &self.coeffs {
            let c2 = c.checked_mul(k)?;
            if !c2.is_zero() {
                out.coeffs.insert(v, c2);
            }
        }
        out.constant = self.constant.checked_mul(k)?;
        Some(out)
    }

    /// Whether the expression mentions no variables.
    pub fn is_constant(&self) -> bool {
        self.coeffs.is_empty()
    }
}

/// Relation of a constraint `expr ⊲ 0`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Rel {
    /// `expr ≤ 0`.
    Le,
    /// `expr ≥ 0`.
    Ge,
    /// `expr = 0`.
    Eq,
}

/// A constraint `expr ⊲ 0`.
#[derive(Clone, Debug)]
pub struct LinCon {
    /// Left-hand side.
    pub expr: LinExpr,
    /// Relation against zero.
    pub rel: Rel,
}

/// A conjunction of integer linear constraints and disequalities.
#[derive(Clone, Debug, Default)]
pub struct LiaProblem {
    /// Number of integer variables (indices `0..num_vars`).
    pub num_vars: usize,
    /// Constraints `expr ⊲ 0`.
    pub constraints: Vec<LinCon>,
    /// Disequalities `expr ≠ 0`.
    pub diseqs: Vec<LinExpr>,
}

/// Result of an LIA feasibility check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LiaResult {
    /// Feasible, with an integer model for variables `0..num_vars`.
    Sat(Vec<i128>),
    /// Infeasible.
    Unsat,
    /// Budget or numeric overflow exhausted.
    Unknown,
}

#[derive(Clone, Debug)]
struct Tableau {
    n_orig: usize,
    n_total: usize,
    rows: Vec<Vec<Rat>>,
    basic: Vec<usize>,
    row_of: Vec<Option<usize>>,
    lb: Vec<Option<Rat>>,
    ub: Vec<Option<Rat>>,
    beta: Vec<Rat>,
    /// Per-disequality: (slack var, required-nonzero offset): violated when
    /// `β(slack) == offset`.
    diseq_slacks: Vec<(usize, Rat)>,
}

struct Overflow;

type Step<T> = Result<T, Overflow>;

#[derive(PartialEq, Eq, Debug)]
enum Feas {
    Feasible,
    Infeasible,
}

fn gcd_i128(mut a: i128, mut b: i128) -> i128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.abs()
}

/// Integer tightening of `Σ cᵢxᵢ ⊲ b` (xs integral): scale so coefficients
/// are integers, divide by their gcd `g`, and round the bound (`floor` for
/// `≤`, `ceil` for `≥`); equalities with `g ∤ b` are infeasible outright.
/// Returns `(coeff-only expr, lb, ub)` or `Err(Tightened::Infeasible)`;
/// `Err(Tightened::Trivial)` marks constraints that became vacuous.
enum Tightened {
    Infeasible,
    Trivial,
    Overflow,
}

fn tighten_con(expr: &LinExpr, rel: Rel) -> Result<(LinExpr, Option<Rat>, Option<Rat>), Tightened> {
    // Scale all coefficients and the constant to integers.
    let mut lcm: i128 = 1;
    for c in expr.coeffs.values().chain(std::iter::once(&expr.constant)) {
        let d = c.den();
        let g = gcd_i128(lcm, d).max(1);
        lcm = (lcm / g).checked_mul(d).ok_or(Tightened::Overflow)?;
    }
    let scale = Rat::int(lcm);
    let scaled = expr.checked_scale(scale).ok_or(Tightened::Overflow)?;
    let mut g: i128 = 0;
    for c in scaled.coeffs.values() {
        g = gcd_i128(g, c.num());
    }
    if g == 0 {
        // Constant constraint.
        let c = scaled.constant;
        let ok = match rel {
            Rel::Le => c <= Rat::ZERO,
            Rel::Ge => c >= Rat::ZERO,
            Rel::Eq => c.is_zero(),
        };
        return if ok {
            Err(Tightened::Trivial)
        } else {
            Err(Tightened::Infeasible)
        };
    }
    // Σ c x ⊲ b with b = −constant; divide by g.
    let b = scaled.constant.checked_neg().ok_or(Tightened::Overflow)?;
    let bg = b.checked_div(Rat::int(g)).ok_or(Tightened::Overflow)?;
    let mut coeffs_only = scaled.clone();
    coeffs_only.constant = Rat::ZERO;
    let coeffs_only = coeffs_only
        .checked_scale(Rat::new(1, g).ok_or(Tightened::Overflow)?)
        .ok_or(Tightened::Overflow)?;
    let (lb, ub) = match rel {
        Rel::Le => (None, Some(Rat::int(bg.floor()))),
        Rel::Ge => (Some(Rat::int(bg.ceil())), None),
        Rel::Eq => {
            if !bg.is_integer() {
                return Err(Tightened::Infeasible);
            }
            (Some(bg), Some(bg))
        }
    };
    Ok((coeffs_only, lb, ub))
}

impl Tableau {
    fn build(p: &LiaProblem) -> Result<Option<Tableau>, ()> {
        // Returns Ok(None) when a constant constraint is violated (Unsat),
        // Err(()) never (reserved), Ok(Some) otherwise.
        let mut slack_rows: Vec<(LinExpr, Option<Rat>, Option<Rat>)> = Vec::new();
        for con in &p.constraints {
            match tighten_con(&con.expr, con.rel) {
                Ok((expr, lb, ub)) => slack_rows.push((expr, lb, ub)),
                Err(Tightened::Trivial) => continue,
                Err(Tightened::Infeasible) => return Ok(None),
                Err(Tightened::Overflow) => return Ok(Some(Tableau::overflow_marker())),
            }
        }
        let mut diseq_slacks = Vec::new();
        for d in &p.diseqs {
            if d.is_constant() {
                if d.constant.is_zero() {
                    return Ok(None); // 0 ≠ 0 is false
                }
                continue;
            }
            let Some(offset) = d.constant.checked_neg() else {
                return Ok(Some(Tableau::overflow_marker()));
            };
            let mut expr = d.clone();
            expr.constant = Rat::ZERO;
            slack_rows.push((expr, None, None));
            diseq_slacks.push(offset);
        }

        let m = slack_rows.len();
        let n_total = p.num_vars + m;
        let mut rows = vec![vec![Rat::ZERO; n_total]; m];
        let mut basic = Vec::with_capacity(m);
        let mut row_of = vec![None; n_total];
        let mut lb = vec![None; n_total];
        let mut ub = vec![None; n_total];
        let mut diseq_iter = diseq_slacks.into_iter();
        let mut diseq_out = Vec::new();
        let mut n_bounded = 0usize;
        for (r, (expr, l, u)) in slack_rows.into_iter().enumerate() {
            let s = p.num_vars + r;
            for (&v, &c) in &expr.coeffs {
                rows[r][v] = c;
            }
            basic.push(s);
            row_of[s] = Some(r);
            lb[s] = l;
            ub[s] = u;
            if l.is_none() && u.is_none() {
                // Disequality slack.
                let offset = diseq_iter.next().expect("diseq slack order");
                diseq_out.push((s, offset));
            } else {
                n_bounded += 1;
            }
        }
        let _ = n_bounded;
        Ok(Some(Tableau {
            n_orig: p.num_vars,
            n_total,
            rows,
            basic,
            row_of,
            lb,
            ub,
            beta: vec![Rat::ZERO; n_total],
            diseq_slacks: diseq_out,
        }))
    }

    fn overflow_marker() -> Tableau {
        Tableau {
            n_orig: usize::MAX,
            n_total: 0,
            rows: Vec::new(),
            basic: Vec::new(),
            row_of: Vec::new(),
            lb: Vec::new(),
            ub: Vec::new(),
            beta: Vec::new(),
            diseq_slacks: Vec::new(),
        }
    }

    fn is_overflow_marker(&self) -> bool {
        self.n_orig == usize::MAX
    }

    /// Sets nonbasic variable `j` to value `v`, updating dependent basics.
    fn update(&mut self, j: usize, v: Rat) -> Step<()> {
        let delta = v.checked_sub(self.beta[j]).ok_or(Overflow)?;
        if delta.is_zero() {
            return Ok(());
        }
        for r in 0..self.rows.len() {
            let a = self.rows[r][j];
            if a.is_zero() {
                continue;
            }
            let b = self.basic[r];
            let inc = a.checked_mul(delta).ok_or(Overflow)?;
            self.beta[b] = self.beta[b].checked_add(inc).ok_or(Overflow)?;
        }
        self.beta[j] = v;
        Ok(())
    }

    /// Pivot row `r` (basic `x_b`) with nonbasic `j`, then set `x_b := v`.
    fn pivot_and_update(&mut self, r: usize, j: usize, v: Rat) -> Step<()> {
        let xb = self.basic[r];
        let a = self.rows[r][j];
        debug_assert!(!a.is_zero());
        let theta = v
            .checked_sub(self.beta[xb])
            .ok_or(Overflow)?
            .checked_div(a)
            .ok_or(Overflow)?;
        self.beta[xb] = v;
        self.beta[j] = self.beta[j].checked_add(theta).ok_or(Overflow)?;
        for r2 in 0..self.rows.len() {
            if r2 == r {
                continue;
            }
            let c = self.rows[r2][j];
            if c.is_zero() {
                continue;
            }
            let b2 = self.basic[r2];
            let inc = c.checked_mul(theta).ok_or(Overflow)?;
            self.beta[b2] = self.beta[b2].checked_add(inc).ok_or(Overflow)?;
        }
        self.pivot(r, j)
    }

    /// Exchanges basic `x_b` of row `r` with nonbasic `j`.
    fn pivot(&mut self, r: usize, j: usize) -> Step<()> {
        let xb = self.basic[r];
        let a = self.rows[r][j];
        // Solve row for x_j: x_j = (x_b − Σ_{k≠j} a_k x_k) / a.
        let inv = Rat::ONE.checked_div(a).ok_or(Overflow)?;
        let mut new_row = vec![Rat::ZERO; self.n_total];
        for (k, cell) in new_row.iter_mut().enumerate() {
            if k == j {
                continue;
            }
            let ak = self.rows[r][k];
            if !ak.is_zero() {
                *cell = ak
                    .checked_neg()
                    .ok_or(Overflow)?
                    .checked_mul(inv)
                    .ok_or(Overflow)?;
            }
        }
        new_row[xb] = inv;
        // Substitute x_j in every other row.
        for r2 in 0..self.rows.len() {
            if r2 == r {
                continue;
            }
            let c = self.rows[r2][j];
            if c.is_zero() {
                continue;
            }
            self.rows[r2][j] = Rat::ZERO;
            for (k, &nk) in new_row.iter().enumerate() {
                if nk.is_zero() {
                    continue;
                }
                let inc = c.checked_mul(nk).ok_or(Overflow)?;
                self.rows[r2][k] = self.rows[r2][k].checked_add(inc).ok_or(Overflow)?;
            }
        }
        self.rows[r] = new_row;
        self.basic[r] = j;
        self.row_of[xb] = None;
        self.row_of[j] = Some(r);
        Ok(())
    }

    /// Restores rational feasibility. Bland's rule ensures termination.
    /// Every pivot executed is counted into `pivots`.
    fn check(&mut self, pivots: &mut u64) -> Step<Feas> {
        // Immediate bound contradictions.
        for v in 0..self.n_total {
            if let (Some(l), Some(u)) = (self.lb[v], self.ub[v]) {
                if l > u {
                    return Ok(Feas::Infeasible);
                }
            }
        }
        // Clamp nonbasic variables into their bounds.
        for v in 0..self.n_total {
            if self.row_of[v].is_some() {
                continue;
            }
            if let Some(l) = self.lb[v] {
                if self.beta[v] < l {
                    self.update(v, l)?;
                }
            }
            if let Some(u) = self.ub[v] {
                if self.beta[v] > u {
                    self.update(v, u)?;
                }
            }
        }
        loop {
            // Bland: smallest-index violating basic variable.
            let mut viol: Option<(usize, usize, bool)> = None; // (var, row, need_increase)
            for r in 0..self.rows.len() {
                let b = self.basic[r];
                if let Some(l) = self.lb[b] {
                    if self.beta[b] < l {
                        if viol.is_none_or(|(v, _, _)| b < v) {
                            viol = Some((b, r, true));
                        }
                        continue;
                    }
                }
                if let Some(u) = self.ub[b] {
                    if self.beta[b] > u && viol.is_none_or(|(v, _, _)| b < v) {
                        viol = Some((b, r, false));
                    }
                }
            }
            let Some((b, r, need_increase)) = viol else {
                return Ok(Feas::Feasible);
            };
            let target = if need_increase {
                self.lb[b].expect("violated lower bound exists")
            } else {
                self.ub[b].expect("violated upper bound exists")
            };
            // Bland: smallest-index eligible nonbasic variable.
            let mut pivot_col: Option<usize> = None;
            for j in 0..self.n_total {
                if self.row_of[j].is_some() || j == b {
                    continue;
                }
                let a = self.rows[r][j];
                if a.is_zero() {
                    continue;
                }
                let can = if need_increase {
                    // Increase x_b: raise x_j if a>0 (x_j below ub), lower if a<0.
                    (a.signum() > 0 && self.ub[j].is_none_or(|u| self.beta[j] < u))
                        || (a.signum() < 0 && self.lb[j].is_none_or(|l| self.beta[j] > l))
                } else {
                    (a.signum() > 0 && self.lb[j].is_none_or(|l| self.beta[j] > l))
                        || (a.signum() < 0 && self.ub[j].is_none_or(|u| self.beta[j] < u))
                };
                if can {
                    pivot_col = Some(j);
                    break;
                }
            }
            let Some(j) = pivot_col else {
                return Ok(Feas::Infeasible);
            };
            *pivots += 1;
            self.pivot_and_update(r, j, target)?;
            // After the pivot, x_j (now basic at row r) has value `target`;
            // the entering variable may itself violate its bounds — the loop
            // continues until no basic violation remains.
        }
    }

    fn tighten(&mut self, v: usize, lower: Option<Rat>, upper: Option<Rat>) -> bool {
        // Returns false when the new bounds are immediately contradictory.
        if let Some(l) = lower {
            match self.lb[v] {
                Some(cur) if cur >= l => {}
                _ => self.lb[v] = Some(l),
            }
        }
        if let Some(u) = upper {
            match self.ub[v] {
                Some(cur) if cur <= u => {}
                _ => self.ub[v] = Some(u),
            }
        }
        match (self.lb[v], self.ub[v]) {
            (Some(l), Some(u)) => l <= u,
            _ => true,
        }
    }
}

/// Default branch-and-bound node budget.
pub const DEFAULT_BNB_BUDGET: u64 = 4_000;

/// Checks feasibility of `p` over the integers. `budget` is decremented per
/// explored branch-and-bound node; exhaustion yields
/// [`LiaResult::Unknown`].
pub fn solve(p: &LiaProblem, budget: &mut u64) -> LiaResult {
    let mut pivots = 0;
    solve_counted(p, budget, &mut pivots)
}

/// Like [`solve`], additionally counting simplex pivot operations into
/// `pivots`. The counter is threaded by reference rather than stored on the
/// tableau because branch-and-bound clones tableaus per node — a field would
/// double-count cloned history.
pub fn solve_counted(p: &LiaProblem, budget: &mut u64, pivots: &mut u64) -> LiaResult {
    match Tableau::build(p) {
        Ok(None) => LiaResult::Unsat,
        Ok(Some(t)) if t.is_overflow_marker() => LiaResult::Unknown,
        Ok(Some(t)) => solve_rec(t, budget, pivots),
        Err(()) => LiaResult::Unknown,
    }
}

/// Iterative branch-and-bound over an explicit worklist (DFS). Each node is
/// a cloned tableau with tightened bounds; depth is bounded by the budget,
/// never by the call stack.
fn solve_rec(root: Tableau, budget: &mut u64, pivots: &mut u64) -> LiaResult {
    let mut work: Vec<Tableau> = vec![root];
    let mut saw_unknown = false;
    while let Some(mut t) = work.pop() {
        if *budget == 0 {
            return LiaResult::Unknown;
        }
        *budget -= 1;
        match t.check(pivots) {
            Err(Overflow) => {
                saw_unknown = true;
                continue;
            }
            Ok(Feas::Infeasible) => continue,
            Ok(Feas::Feasible) => {}
        }
        // Branch on a fractional original variable.
        let split = (0..t.n_orig)
            .find(|&v| !t.beta[v].is_integer())
            .map(|v| {
                let fl = Rat::int(t.beta[v].floor());
                (v, fl)
            })
            .or_else(|| {
                // Integral model: enforce disequalities.
                t.diseq_slacks.iter().find_map(|&(s, offset)| {
                    (t.beta[s] == offset).then_some((s, offset)) // branch around `offset`
                })
            });
        let Some((v, pivot_val)) = split else {
            let model = (0..t.n_orig).map(|v| t.beta[v].floor()).collect();
            return LiaResult::Sat(model);
        };
        // Low branch: x_v ≤ pivot_val (fractional case) or ≤ offset−1
        // (diseq case, where β is exactly `offset`, an integer).
        let (low, high) = if t.beta[v].is_integer() {
            // Disequality split around the integer value.
            let Some(l) = pivot_val.checked_sub(Rat::ONE) else {
                saw_unknown = true;
                continue;
            };
            let Some(h) = pivot_val.checked_add(Rat::ONE) else {
                saw_unknown = true;
                continue;
            };
            (l, h)
        } else {
            let Some(h) = pivot_val.checked_add(Rat::ONE) else {
                saw_unknown = true;
                continue;
            };
            (pivot_val, h)
        };
        let mut right = t.clone();
        if right.tighten(v, Some(high), None) {
            work.push(right);
        }
        let mut left = t;
        if left.tighten(v, None, Some(low)) {
            work.push(left);
        }
    }
    if saw_unknown {
        LiaResult::Unknown
    } else {
        LiaResult::Unsat
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn le(expr: LinExpr) -> LinCon {
        LinCon {
            expr,
            rel: Rel::Le,
        }
    }

    fn ge(expr: LinExpr) -> LinCon {
        LinCon {
            expr,
            rel: Rel::Ge,
        }
    }

    fn eq(expr: LinExpr) -> LinCon {
        LinCon {
            expr,
            rel: Rel::Eq,
        }
    }

    fn expr(terms: &[(usize, i128)], k: i128) -> LinExpr {
        let mut e = LinExpr::constant(Rat::int(k));
        for &(v, c) in terms {
            e.add_term(v, Rat::int(c)).unwrap();
        }
        e
    }

    fn run(p: &LiaProblem) -> LiaResult {
        let mut budget = DEFAULT_BNB_BUDGET;
        solve(p, &mut budget)
    }

    #[test]
    fn unconstrained_is_sat() {
        let p = LiaProblem {
            num_vars: 2,
            ..Default::default()
        };
        assert!(matches!(run(&p), LiaResult::Sat(_)));
    }

    #[test]
    fn simple_bounds() {
        // x ≥ 3 ∧ x ≤ 5 → sat with 3 ≤ x ≤ 5.
        let p = LiaProblem {
            num_vars: 1,
            constraints: vec![ge(expr(&[(0, 1)], -3)), le(expr(&[(0, 1)], -5))],
            diseqs: vec![],
        };
        let LiaResult::Sat(m) = run(&p) else { panic!() };
        assert!((3..=5).contains(&m[0]));
    }

    #[test]
    fn contradictory_bounds_unsat() {
        // x ≥ 5 ∧ x ≤ 3.
        let p = LiaProblem {
            num_vars: 1,
            constraints: vec![ge(expr(&[(0, 1)], -5)), le(expr(&[(0, 1)], -3))],
            diseqs: vec![],
        };
        assert_eq!(run(&p), LiaResult::Unsat);
    }

    #[test]
    fn equalities_chain() {
        // x = y ∧ y = z ∧ x + z = 10 ∧ x ≥ 5 → x = y = z = 5.
        let p = LiaProblem {
            num_vars: 3,
            constraints: vec![
                eq(expr(&[(0, 1), (1, -1)], 0)),
                eq(expr(&[(1, 1), (2, -1)], 0)),
                eq(expr(&[(0, 1), (2, 1)], -10)),
                ge(expr(&[(0, 1)], -5)),
            ],
            diseqs: vec![],
        };
        let LiaResult::Sat(m) = run(&p) else { panic!() };
        assert_eq!(m, vec![5, 5, 5]);
    }

    #[test]
    fn integer_cut_unsat() {
        // 2x = 1 has a rational solution but no integer one.
        let p = LiaProblem {
            num_vars: 1,
            constraints: vec![eq(expr(&[(0, 2)], -1))],
            diseqs: vec![],
        };
        assert_eq!(run(&p), LiaResult::Unsat);
    }

    #[test]
    fn integer_branching_finds_model() {
        // 2x + 3y = 7, x ≥ 0, y ≥ 0 → (2,1).
        let p = LiaProblem {
            num_vars: 2,
            constraints: vec![
                eq(expr(&[(0, 2), (1, 3)], -7)),
                ge(expr(&[(0, 1)], 0)),
                ge(expr(&[(1, 1)], 0)),
            ],
            diseqs: vec![],
        };
        let LiaResult::Sat(m) = run(&p) else { panic!() };
        assert_eq!(2 * m[0] + 3 * m[1], 7);
        assert!(m[0] >= 0 && m[1] >= 0);
    }

    #[test]
    fn diseq_forces_gap() {
        // 0 ≤ x ≤ 1 ∧ x ≠ 0 ∧ x ≠ 1 → unsat over ints.
        let p = LiaProblem {
            num_vars: 1,
            constraints: vec![ge(expr(&[(0, 1)], 0)), le(expr(&[(0, 1)], -1))],
            diseqs: vec![expr(&[(0, 1)], 0), expr(&[(0, 1)], -1)],
        };
        assert_eq!(run(&p), LiaResult::Unsat);
    }

    #[test]
    fn diseq_satisfiable() {
        // 0 ≤ x ≤ 2 ∧ x ≠ 1 → x ∈ {0, 2}.
        let p = LiaProblem {
            num_vars: 1,
            constraints: vec![ge(expr(&[(0, 1)], 0)), le(expr(&[(0, 1)], -2))],
            diseqs: vec![expr(&[(0, 1)], -1)],
        };
        let LiaResult::Sat(m) = run(&p) else { panic!() };
        assert!(m[0] == 0 || m[0] == 2);
    }

    #[test]
    fn constant_constraints() {
        let p = LiaProblem {
            num_vars: 0,
            constraints: vec![le(expr(&[], 1))], // 1 ≤ 0
            diseqs: vec![],
        };
        assert_eq!(run(&p), LiaResult::Unsat);
        let p2 = LiaProblem {
            num_vars: 0,
            constraints: vec![le(expr(&[], -1))], // −1 ≤ 0
            diseqs: vec![expr(&[], 5)],           // 5 ≠ 0
        };
        assert!(matches!(run(&p2), LiaResult::Sat(_)));
        let p3 = LiaProblem {
            num_vars: 0,
            constraints: vec![],
            diseqs: vec![expr(&[], 0)], // 0 ≠ 0
        };
        assert_eq!(run(&p3), LiaResult::Unsat);
    }

    #[test]
    fn difference_logic_cycle() {
        // x − y ≤ −1 ∧ y − z ≤ −1 ∧ z − x ≤ −1 (strict cycle) → unsat.
        let p = LiaProblem {
            num_vars: 3,
            constraints: vec![
                le(expr(&[(0, 1), (1, -1)], 1)),
                le(expr(&[(1, 1), (2, -1)], 1)),
                le(expr(&[(2, 1), (0, -1)], 1)),
            ],
            diseqs: vec![],
        };
        assert_eq!(run(&p), LiaResult::Unsat);
    }

    #[test]
    fn loop_invariant_shape() {
        // The paper's Example 6 check: j = i−1 ∧ ¬(i>0 ∧ j≥0) ⇒ ¬(i>0) ∧ ¬(j≥0).
        // Negated obligation (one disjunct): j = i−1 ∧ ¬(i>0) … we test the
        // core fragment: j = i−1 ∧ i ≤ 0 ∧ j ≥ 0 → unsat.
        let p = LiaProblem {
            num_vars: 2, // 0=i, 1=j
            constraints: vec![
                eq(expr(&[(1, 1), (0, -1)], 1)), // j − i + 1 = 0
                le(expr(&[(0, 1)], 0)),          // i ≤ 0
                ge(expr(&[(1, 1)], 0)),          // j ≥ 0
            ],
            diseqs: vec![],
        };
        assert_eq!(run(&p), LiaResult::Unsat);
    }

    #[test]
    fn budget_exhaustion_is_unknown() {
        // 2x + 3y = 1 ∧ 0 ≤ x,y ≤ 1: rationally feasible, integrally
        // infeasible, and the gcd cut does not fire (gcd(2,3) = 1), so
        // branching is required; with budget 1 the verdict is Unknown.
        let p = LiaProblem {
            num_vars: 2,
            constraints: vec![
                eq(expr(&[(0, 2), (1, 3)], -1)),
                ge(expr(&[(0, 1)], 0)),
                le(expr(&[(0, 1)], -1)),
                ge(expr(&[(1, 1)], 0)),
                le(expr(&[(1, 1)], -1)),
            ],
            diseqs: vec![],
        };
        let mut budget = 1;
        assert_eq!(solve(&p, &mut budget), LiaResult::Unknown);
        let mut budget = DEFAULT_BNB_BUDGET;
        assert_eq!(solve(&p, &mut budget), LiaResult::Unsat);
    }

    #[test]
    fn gcd_cut_catches_divergent_instances() {
        // 2x − 2y = 1 is rationally feasible on an unbounded polyhedron;
        // naive branch-and-bound diverges, the gcd tightening refutes it
        // immediately.
        let p = LiaProblem {
            num_vars: 2,
            constraints: vec![eq(expr(&[(0, 2), (1, -2)], -1))],
            diseqs: vec![],
        };
        let mut budget = 10;
        assert_eq!(solve(&p, &mut budget), LiaResult::Unsat);
        assert!(budget >= 9, "gcd cut should refute without branching");
    }

    #[test]
    fn mixed_system_with_many_pivots() {
        // x + y + z ≤ 10, x − y ≥ 2, y − z ≥ 1, z ≥ 1 → e.g. (4,2,1)… check sat & constraints.
        let p = LiaProblem {
            num_vars: 3,
            constraints: vec![
                le(expr(&[(0, 1), (1, 1), (2, 1)], -10)),
                ge(expr(&[(0, 1), (1, -1)], -2)),
                ge(expr(&[(1, 1), (2, -1)], -1)),
                ge(expr(&[(2, 1)], -1)),
            ],
            diseqs: vec![],
        };
        let LiaResult::Sat(m) = run(&p) else { panic!() };
        assert!(m[0] + m[1] + m[2] <= 10);
        assert!(m[0] - m[1] >= 2);
        assert!(m[1] - m[2] >= 1);
        assert!(m[2] >= 1);
    }
}
