//! The lazy-SMT top loop: CDCL enumeration of boolean models with theory
//! final-checks and blocking-clause learning.
//!
//! [`Solver::check`] decides satisfiability of a formula modulo LIA ∪ EUF;
//! [`Solver::is_valid`] answers entailment questions by refutation — the form
//! used throughout the consolidation engine (`Ψ ⊨ e` becomes
//! `check(Ψ ∧ ¬e) = Unsat`).

use crate::cnf;
use crate::ctx::{Context, Formula, FormulaId};
use crate::sat::{Lit, SatOutcome, SatSolver, Var};
use crate::theory::{self, TheoryLimits, TheoryLit, TheoryResult, TheoryStats};
use udf_obs::{names, RecorderCell};

/// Outcome of an SMT check.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SatResult {
    /// Satisfiable (modulo the documented combination incompleteness).
    Sat,
    /// Unsatisfiable — this verdict is always sound.
    Unsat,
    /// Budget exhausted or incomplete fragment; treat as "not proved".
    Unknown,
}

/// Cumulative solver statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// SMT-level checks performed.
    pub checks: u64,
    /// Boolean models subjected to a theory final-check.
    pub theory_checks: u64,
    /// Blocking clauses learned from theory conflicts.
    pub theory_conflicts: u64,
    /// Literals removed by conflict minimization.
    pub minimized_literals: u64,
    /// CDCL decisions across all boolean searches.
    pub sat_decisions: u64,
    /// CDCL conflicts across all boolean searches.
    pub sat_conflicts: u64,
    /// Unit propagations across all boolean searches.
    pub sat_propagations: u64,
    /// Simplex pivot operations across all theory checks.
    pub simplex_pivots: u64,
    /// Nelson–Oppen equality-exchange rounds across all theory checks.
    pub theory_rounds: u64,
}

/// Configuration and statistics holder for SMT checks.
///
/// The solver is stateless across [`Solver::check`] calls apart from
/// statistics, so one instance can serve many queries.
#[derive(Clone, Debug)]
pub struct Solver {
    /// SAT conflict budget per boolean search.
    pub max_conflicts: u64,
    /// Maximum boolean models to final-check before giving up.
    pub max_final_checks: u64,
    /// Theory limits per final check.
    pub theory_limits: TheoryLimits,
    /// Maximum literal-set size eligible for greedy conflict minimization.
    pub minimize_up_to: usize,
    /// Deterministic fault-injection hook: 0-based check indices (counted
    /// by [`SolverStats::checks`]) forced to return [`SatResult::Unknown`]
    /// without running. `Unknown` is always a sound answer, so injection can
    /// only suppress rewrites downstream — which is exactly what robustness
    /// tests use it for. Empty (the default) disables injection.
    pub force_unknown_checks: std::collections::BTreeSet<u64>,
    /// Metrics sink. Defaults to the no-op recorder; install a
    /// [`udf_obs::MemoryRecorder`] (via [`RecorderCell::memory`]) to collect
    /// live counters and a per-check latency histogram. Cloning the solver
    /// clones the *handle*: all clones feed the same sink.
    pub recorder: RecorderCell,
    stats: SolverStats,
}

impl Default for Solver {
    fn default() -> Solver {
        Solver::new()
    }
}

impl Solver {
    /// Creates a solver with default limits.
    pub fn new() -> Solver {
        Solver {
            max_conflicts: 200_000,
            max_final_checks: 4_000,
            theory_limits: TheoryLimits::default(),
            minimize_up_to: 24,
            force_unknown_checks: std::collections::BTreeSet::new(),
            recorder: RecorderCell::noop(),
            stats: SolverStats::default(),
        }
    }

    /// Builder form of [`Solver::force_unknown_checks`]: forces `Unknown`
    /// on the given 0-based check indices.
    #[must_use]
    pub fn with_unknown_at<I: IntoIterator<Item = u64>>(mut self, checks: I) -> Solver {
        self.force_unknown_checks.extend(checks);
        self
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Checks satisfiability of `f` modulo LIA ∪ EUF.
    pub fn check(&mut self, ctx: &Context, f: FormulaId) -> SatResult {
        self.check_with_model(ctx, f).0
    }

    /// Like [`Solver::check`], also returning an integer model for the source
    /// variables when satisfiable. Variables unconstrained by the found model
    /// are absent from the map (any value works for them).
    pub fn check_with_model(
        &mut self,
        ctx: &Context,
        f: FormulaId,
    ) -> (SatResult, Option<theory::Model>) {
        let _span = self.recorder.span(names::SMT_CHECK_NS);
        self.stats.checks += 1;
        self.recorder.add(names::SMT_CHECKS, 1);
        if self
            .force_unknown_checks
            .contains(&(self.stats.checks - 1))
        {
            return (SatResult::Unknown, None);
        }
        match ctx.formula(f) {
            Formula::True => return (SatResult::Sat, Some(theory::Model::new())),
            Formula::False => return (SatResult::Unsat, None),
            _ => {}
        }
        let mut sat = SatSolver::new();
        let out = self.search(ctx, f, &mut sat);
        let st = sat.stats();
        self.stats.sat_decisions += st.decisions;
        self.stats.sat_conflicts += st.conflicts;
        self.stats.sat_propagations += st.propagations;
        self.recorder.add(names::SMT_SAT_DECISIONS, st.decisions);
        self.recorder.add(names::SMT_SAT_CONFLICTS, st.conflicts);
        self.recorder.add(names::SMT_SAT_PROPAGATIONS, st.propagations);
        out
    }

    /// The CDCL(T) loop proper: enumerate boolean models of `f` with `sat`,
    /// final-check each against the theory, learn blocking clauses.
    fn search(
        &mut self,
        ctx: &Context,
        f: FormulaId,
        sat: &mut SatSolver,
    ) -> (SatResult, Option<theory::Model>) {
        let compiled = cnf::compile(ctx, f, sat);
        let atom_vars: Vec<(Var, FormulaId)> =
            compiled.atoms.iter().map(|(&v, &a)| (v, a)).collect();
        let mut saw_unknown = false;
        for _ in 0..self.max_final_checks {
            match sat.solve(self.max_conflicts) {
                SatOutcome::Unsat => {
                    return if saw_unknown {
                        (SatResult::Unknown, None)
                    } else {
                        (SatResult::Unsat, None)
                    };
                }
                SatOutcome::Unknown => return (SatResult::Unknown, None),
                SatOutcome::Sat => {}
            }
            let literals: Vec<TheoryLit> = atom_vars
                .iter()
                .map(|&(v, a)| (a, sat.value(v)))
                .collect();
            self.stats.theory_checks += 1;
            self.recorder.add(names::SMT_THEORY_CHECKS, 1);
            let mut tstats = TheoryStats::default();
            let (verdict, model) =
                theory::check_with_model_stats(ctx, &literals, &self.theory_limits, &mut tstats);
            self.fold_theory_stats(tstats);
            match verdict {
                TheoryResult::Consistent => return (SatResult::Sat, model),
                TheoryResult::Inconsistent => {
                    self.stats.theory_conflicts += 1;
                    self.recorder.add(names::SMT_THEORY_CONFLICTS, 1);
                    let core = self.minimize(ctx, literals);
                    let clause: Vec<Lit> = atom_vars
                        .iter()
                        .filter_map(|&(v, a)| {
                            core.iter().find(|&&(ca, _)| ca == a).map(|&(_, pol)| {
                                if pol {
                                    Lit::neg(v)
                                } else {
                                    Lit::pos(v)
                                }
                            })
                        })
                        .collect();
                    sat.add_clause(&clause);
                }
                TheoryResult::Unknown => {
                    // Cannot trust this model; block it wholesale and record
                    // that a final Unsat is no longer conclusive.
                    saw_unknown = true;
                    let clause: Vec<Lit> = atom_vars
                        .iter()
                        .map(|&(v, _)| {
                            if sat.value(v) {
                                Lit::neg(v)
                            } else {
                                Lit::pos(v)
                            }
                        })
                        .collect();
                    sat.add_clause(&clause);
                }
            }
        }
        (SatResult::Unknown, None)
    }

    /// Greedy theory-conflict minimization: drops literals whose removal
    /// keeps the set inconsistent, producing a stronger blocking clause.
    fn minimize(&mut self, ctx: &Context, mut literals: Vec<TheoryLit>) -> Vec<TheoryLit> {
        if literals.len() > self.minimize_up_to {
            return literals;
        }
        let mut i = 0;
        while i < literals.len() {
            let removed = literals.remove(i);
            let mut tstats = TheoryStats::default();
            let verdict =
                theory::check_with_model_stats(ctx, &literals, &self.theory_limits, &mut tstats).0;
            self.fold_theory_stats(tstats);
            if verdict == TheoryResult::Inconsistent {
                self.stats.minimized_literals += 1;
                self.recorder.add(names::SMT_MINIMIZED_LITERALS, 1);
                // Keep it removed; index i now points at the next literal.
            } else {
                literals.insert(i, removed);
                i += 1;
            }
        }
        literals
    }

    /// Accumulates one theory check's work counters into the cumulative
    /// stats and the recorder.
    fn fold_theory_stats(&mut self, t: TheoryStats) {
        self.stats.simplex_pivots += t.pivots;
        self.stats.theory_rounds += t.rounds;
        self.recorder.add(names::SMT_SIMPLEX_PIVOTS, t.pivots);
        self.recorder.add(names::SMT_THEORY_ROUNDS, t.rounds);
    }

    /// Whether `hypothesis ⇒ conclusion` is valid (proved by refutation).
    /// `Unknown` counts as *not proved*.
    pub fn is_valid(
        &mut self,
        ctx: &mut Context,
        hypothesis: FormulaId,
        conclusion: FormulaId,
    ) -> bool {
        let neg = ctx.not(conclusion);
        let q = ctx.and(hypothesis, neg);
        self.check(ctx, q) == SatResult::Unsat
    }

    /// Whether `f` is unsatisfiable.
    pub fn is_unsat(&mut self, ctx: &Context, f: FormulaId) -> bool {
        self.check(ctx, f) == SatResult::Unsat
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solver() -> Solver {
        Solver::new()
    }

    #[test]
    fn propositional_reasoning() {
        let mut ctx = Context::new();
        let x = ctx.int_var("x");
        let zero = ctx.int(0);
        let a = ctx.le(x, zero);
        let na = ctx.not(a);
        let phi = ctx.and(a, na);
        assert_eq!(solver().check(&ctx, phi), SatResult::Unsat);
        let psi = ctx.or(a, na);
        assert_eq!(solver().check(&ctx, psi), SatResult::Sat);
    }

    #[test]
    fn arithmetic_entailment() {
        // x > 0 ⇒ x ≥ 1 over integers.
        let mut ctx = Context::new();
        let x = ctx.int_var("x");
        let zero = ctx.int(0);
        let one = ctx.int(1);
        let h = ctx.lt(zero, x);
        let c = ctx.le(one, x);
        assert!(solver().is_valid(&mut ctx, h, c));
        // But x > 0 does not entail x ≥ 2.
        let two = ctx.int(2);
        let c2 = ctx.le(two, x);
        assert!(!solver().is_valid(&mut ctx, h, c2));
    }

    #[test]
    fn congruence_entailment() {
        // x = α ∧ y = f(x) ⇒ y = f(α).
        let mut ctx = Context::new();
        let f = ctx.fn_sym("f", 1);
        let x = ctx.int_var("x");
        let y = ctx.int_var("y");
        let alpha = ctx.int_var("alpha");
        let fx = ctx.app(f, vec![x]);
        let falpha = ctx.app(f, vec![alpha]);
        let h1 = ctx.eq(x, alpha);
        let h2 = ctx.eq(y, fx);
        let h = ctx.and(h1, h2);
        let c = ctx.eq(y, falpha);
        assert!(solver().is_valid(&mut ctx, h, c));
    }

    #[test]
    fn disjunctive_hypothesis() {
        // (x ≤ 0 ∨ x ≥ 10) ∧ x = 5 is unsat.
        let mut ctx = Context::new();
        let x = ctx.int_var("x");
        let zero = ctx.int(0);
        let ten = ctx.int(10);
        let five = ctx.int(5);
        let a = ctx.le(x, zero);
        let b = ctx.le(ten, x);
        let ab = ctx.or(a, b);
        let e = ctx.eq(x, five);
        let phi = ctx.and(ab, e);
        assert_eq!(solver().check(&ctx, phi), SatResult::Unsat);
    }

    #[test]
    fn paper_figure6_test_complement() {
        // x > α ⊨ ¬(x ≤ α), and ¬(x > α) ⊨ x ≤ α — the If-rule checks from
        // the paper's Figure 6 derivation.
        let mut ctx = Context::new();
        let x = ctx.int_var("x");
        let alpha = ctx.int_var("alpha");
        let gt = ctx.lt(alpha, x); // x > α
        let le = ctx.le(x, alpha);
        let nle = ctx.not(le);
        assert!(solver().is_valid(&mut ctx, gt, nle));
        let ngt = ctx.not(gt);
        assert!(solver().is_valid(&mut ctx, ngt, le));
    }

    #[test]
    fn paper_example6_loop_exit() {
        // j = i − 1 ∧ ¬(i > 0 ∧ j ≥ 0) ⇒ ¬(i > 0) ∧ ¬(j ≥ 0).
        let mut ctx = Context::new();
        let i = ctx.int_var("i");
        let j = ctx.int_var("j");
        let zero = ctx.int(0);
        let one = ctx.int(1);
        let im1 = ctx.sub(i, one);
        let inv = ctx.eq(j, im1);
        let i_pos = ctx.lt(zero, i);
        let j_nonneg = ctx.le(zero, j);
        let guard = ctx.and(i_pos, j_nonneg);
        let nguard = ctx.not(guard);
        let h = ctx.and(inv, nguard);
        let ni = ctx.not(i_pos);
        let nj = ctx.not(j_nonneg);
        let c = ctx.and(ni, nj);
        assert!(solver().is_valid(&mut ctx, h, c));
    }

    #[test]
    fn cross_simplification_example4() {
        // x = f(α) + 1 ⊨ f(α) − 1 = x − 2.
        let mut ctx = Context::new();
        let f = ctx.fn_sym("f", 1);
        let alpha = ctx.int_var("alpha");
        let x = ctx.int_var("x");
        let one = ctx.int(1);
        let two = ctx.int(2);
        let fa = ctx.app(f, vec![alpha]);
        let fa1 = ctx.add(fa, one);
        let h = ctx.eq(x, fa1);
        let lhs = ctx.sub(fa, one);
        let rhs = ctx.sub(x, two);
        let c = ctx.eq(lhs, rhs);
        assert!(solver().is_valid(&mut ctx, h, c));
    }

    #[test]
    fn unknown_on_tiny_budgets_never_unsound() {
        // With a starving budget the solver may return Unknown but must not
        // return a wrong Unsat for a satisfiable formula.
        let mut ctx = Context::new();
        let x = ctx.int_var("x");
        let y = ctx.int_var("y");
        let two = ctx.int(2);
        let seven = ctx.int(7);
        let tx = ctx.mul(two, x);
        let ty = ctx.mul(two, y);
        let sum = ctx.add(tx, ty);
        let e = ctx.eq(sum, seven); // 2x + 2y = 7: unsat over ints
        let mut s = Solver::new();
        s.theory_limits.lia_budget = 1;
        let r = s.check(&ctx, e);
        assert_ne!(r, SatResult::Sat, "2x+2y=7 has no integer model");
    }

    #[test]
    fn injected_unknown_hits_exactly_the_kth_check() {
        let mut ctx = Context::new();
        let x = ctx.int_var("x");
        let zero = ctx.int(0);
        let a = ctx.le(x, zero);
        let na = ctx.not(a);
        let phi = ctx.and(a, na); // unsat
        let mut s = Solver::new().with_unknown_at([1]);
        assert_eq!(s.check(&ctx, phi), SatResult::Unsat);
        assert_eq!(s.check(&ctx, phi), SatResult::Unknown, "check #1 is forced");
        assert_eq!(s.check(&ctx, phi), SatResult::Unsat);
    }

    #[test]
    fn stats_accumulate() {
        let mut ctx = Context::new();
        let x = ctx.int_var("x");
        let zero = ctx.int(0);
        let a = ctx.le(x, zero);
        let na = ctx.not(a);
        let phi = ctx.and(a, na);
        let mut s = solver();
        let _ = s.check(&ctx, phi);
        assert_eq!(s.stats().checks, 1);
    }
}
