//! Theory consistency checking for conjunctions of EUF ∪ LIA literals, and
//! the Nelson–Oppen-style equality exchange between the two theories.
//!
//! Given the atom assignment produced by the SAT core, [`check`] decides
//! whether the implied conjunction of theory literals is consistent:
//!
//! 1. equalities/disequalities go to the congruence closure ([`crate::euf`]),
//! 2. every atom is linearized over *theory variables* — one per source
//!    variable, per uninterpreted application, and per nonlinear product —
//!    and handed to the simplex ([`crate::simplex`]),
//! 3. EUF-derived equalities are pushed into LIA, and LIA-implied equalities
//!    between interface terms (detected by probing) are pushed back into EUF
//!    until fixpoint.
//!
//! The exchange is complete for the convex fragment and sound everywhere:
//! `Inconsistent` is only reported for genuinely inconsistent literal sets,
//! so the SMT layer never learns a wrong blocking clause and never reports a
//! wrong `Unsat`.

use crate::ctx::{Context, Formula, FormulaId, Term, TermId};
use crate::euf::Euf;
use crate::rational::Rat;
use crate::simplex::{self, LiaProblem, LiaResult, LinCon, LinExpr, Rel};
use std::collections::{BTreeSet, HashMap};

/// Verdict for a literal conjunction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TheoryResult {
    /// A model exists (up to the documented incompleteness of the
    /// combination on non-convex instances).
    Consistent,
    /// Provably inconsistent.
    Inconsistent,
    /// Resource limits hit; no verdict.
    Unknown,
}

/// Resource limits for one theory check.
#[derive(Clone, Copy, Debug)]
pub struct TheoryLimits {
    /// Branch-and-bound node budget per simplex call.
    pub lia_budget: u64,
    /// Maximum interface pairs probed for implied equalities per round.
    pub max_probe_pairs: usize,
    /// Maximum Nelson–Oppen exchange rounds.
    pub max_rounds: usize,
}

impl Default for TheoryLimits {
    fn default() -> TheoryLimits {
        TheoryLimits {
            lia_budget: simplex::DEFAULT_BNB_BUDGET,
            max_probe_pairs: 256,
            max_rounds: 8,
        }
    }
}

/// Work counters for one or more theory checks.
///
/// Filled by [`check_with_model_stats`]; the plain [`check`] /
/// [`check_with_model`] entry points discard them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TheoryStats {
    /// Nelson–Oppen exchange rounds executed.
    pub rounds: u64,
    /// Simplex (branch-and-bound) solves, including probe side-checks.
    pub simplex_calls: u64,
    /// Simplex pivot operations across all solves.
    pub pivots: u64,
}

/// A theory literal: an atom formula with a polarity.
pub type TheoryLit = (FormulaId, bool);

/// An integer model for the source variables mentioned by the literal set.
/// Variables not occurring in any checked atom are unconstrained and absent.
pub type Model = std::collections::HashMap<crate::ctx::VarId, i128>;

struct Linearizer {
    /// Theory-variable index per source variable / opaque term.
    var_of_term: HashMap<TermId, usize>,
    num_vars: usize,
    memo: HashMap<TermId, Option<LinExpr>>,
}

impl Linearizer {
    fn new() -> Linearizer {
        Linearizer {
            var_of_term: HashMap::new(),
            num_vars: 0,
            memo: HashMap::new(),
        }
    }

    fn proxy(&mut self, t: TermId) -> usize {
        if let Some(&v) = self.var_of_term.get(&t) {
            return v;
        }
        let v = self.num_vars;
        self.num_vars += 1;
        self.var_of_term.insert(t, v);
        v
    }

    /// Linear form of `t`; `None` on arithmetic overflow.
    fn lin(&mut self, ctx: &Context, t: TermId) -> Option<LinExpr> {
        if let Some(cached) = self.memo.get(&t) {
            return cached.clone();
        }
        let result = match ctx.term(t).clone() {
            Term::Int(c) => Some(LinExpr::constant(Rat::int(i128::from(c)))),
            Term::Var(_) | Term::App(..) => Some(LinExpr::var(self.proxy(t))),
            Term::Add(a, b) => {
                let (la, lb) = (self.lin(ctx, a)?, self.lin(ctx, b)?);
                la.checked_add(&lb)
            }
            Term::Sub(a, b) => {
                let (la, lb) = (self.lin(ctx, a)?, self.lin(ctx, b)?);
                la.checked_sub(&lb)
            }
            Term::Mul(a, b) => {
                let (la, lb) = (self.lin(ctx, a)?, self.lin(ctx, b)?);
                if la.is_constant() {
                    lb.checked_scale(la.constant)
                } else if lb.is_constant() {
                    la.checked_scale(lb.constant)
                } else {
                    // Nonlinear product: opaque theory variable. Structurally
                    // identical products share a proxy via hash-consing.
                    Some(LinExpr::var(self.proxy(t)))
                }
            }
        };
        self.memo.insert(t, result.clone());
        result
    }
}

/// Decides consistency of the conjunction of `literals`.
pub fn check(ctx: &Context, literals: &[TheoryLit], limits: &TheoryLimits) -> TheoryResult {
    check_with_model(ctx, literals, limits).0
}

/// Like [`check`], additionally returning a source-variable model when the
/// verdict is [`TheoryResult::Consistent`].
pub fn check_with_model(
    ctx: &Context,
    literals: &[TheoryLit],
    limits: &TheoryLimits,
) -> (TheoryResult, Option<Model>) {
    let mut stats = TheoryStats::default();
    check_with_model_stats(ctx, literals, limits, &mut stats)
}

/// Like [`check_with_model`], additionally accumulating work counters
/// (exchange rounds, simplex calls, pivots) into `stats`.
pub fn check_with_model_stats(
    ctx: &Context,
    literals: &[TheoryLit],
    limits: &TheoryLimits,
    stats: &mut TheoryStats,
) -> (TheoryResult, Option<Model>) {
    let mut euf = Euf::new();
    let mut lz = Linearizer::new();
    let mut base: Vec<LinCon> = Vec::new();
    let mut diseqs: Vec<LinExpr> = Vec::new();

    // Phase 1: dispatch literals to both theories.
    for &(atom, polarity) in literals {
        match ctx.formula(atom).clone() {
            Formula::Eq(a, b) => {
                if polarity {
                    if !euf.merge(ctx, a, b) {
                        return (TheoryResult::Inconsistent, None);
                    }
                } else if !euf.add_diseq(ctx, a, b) {
                    return (TheoryResult::Inconsistent, None);
                }
                let (Some(la), Some(lb)) = (lz.lin(ctx, a), lz.lin(ctx, b)) else {
                    return (TheoryResult::Unknown, None);
                };
                let Some(d) = la.checked_sub(&lb) else {
                    return (TheoryResult::Unknown, None);
                };
                if polarity {
                    base.push(LinCon {
                        expr: d,
                        rel: Rel::Eq,
                    });
                } else {
                    diseqs.push(d);
                }
            }
            Formula::Le(a, b) | Formula::Lt(a, b) => {
                let strict = matches!(ctx.formula(atom), Formula::Lt(..));
                euf.add_term(ctx, a);
                euf.add_term(ctx, b);
                let (Some(la), Some(lb)) = (lz.lin(ctx, a), lz.lin(ctx, b)) else {
                    return (TheoryResult::Unknown, None);
                };
                // polarity ∧ strict:  a <  b ≡ a − b + 1 ≤ 0
                // polarity ∧ weak:    a ≤  b ≡ a − b ≤ 0
                // ¬polarity ∧ strict: a ≥  b ≡ b − a ≤ 0
                // ¬polarity ∧ weak:   a >  b ≡ b − a + 1 ≤ 0
                let (lhs, rhs, add_one) = if polarity {
                    (la, lb, strict)
                } else {
                    (lb, la, !strict)
                };
                let Some(mut d) = lhs.checked_sub(&rhs) else {
                    return (TheoryResult::Unknown, None);
                };
                if add_one {
                    let Some(c) = d.constant.checked_add(Rat::ONE) else {
                        return (TheoryResult::Unknown, None);
                    };
                    d.constant = c;
                }
                base.push(LinCon {
                    expr: d,
                    rel: Rel::Le,
                });
            }
            other => {
                debug_assert!(false, "non-atom in theory check: {other:?}");
            }
        }
    }
    if !euf.consistent(ctx) {
        return (TheoryResult::Inconsistent, None);
    }

    // Interface terms: arguments of registered applications (candidates for
    // implied-equality probing).
    let mut interface: BTreeSet<TermId> = BTreeSet::new();
    for &t in euf.registered_terms() {
        if let Term::App(_, args) = ctx.term(t) {
            for &a in args {
                interface.insert(a);
            }
        }
    }
    let interface: Vec<TermId> = interface.into_iter().collect();

    // Phase 2: Nelson–Oppen exchange.
    for _round in 0..limits.max_rounds {
        stats.rounds += 1;
        // EUF classes → LIA equalities.
        let mut class_members: HashMap<u32, Vec<TermId>> = HashMap::new();
        let registered: Vec<TermId> = euf.registered_terms().to_vec();
        for &t in &registered {
            let root = euf.class_id(t).expect("registered term has a class");
            class_members.entry(root).or_default().push(t);
        }
        let mut constraints = base.clone();
        for members in class_members.values() {
            let rep = members[0];
            let Some(lrep) = lz.lin(ctx, rep) else {
                return (TheoryResult::Unknown, None);
            };
            for &m in &members[1..] {
                let Some(lm) = lz.lin(ctx, m) else {
                    return (TheoryResult::Unknown, None);
                };
                let Some(d) = lrep.checked_sub(&lm) else {
                    return (TheoryResult::Unknown, None);
                };
                constraints.push(LinCon {
                    expr: d,
                    rel: Rel::Eq,
                });
            }
        }
        let problem = LiaProblem {
            num_vars: lz.num_vars,
            constraints: constraints.clone(),
            diseqs: diseqs.clone(),
        };
        let mut budget = limits.lia_budget;
        stats.simplex_calls += 1;
        let model = match simplex::solve_counted(&problem, &mut budget, &mut stats.pivots) {
            LiaResult::Unsat => return (TheoryResult::Inconsistent, None),
            LiaResult::Unknown => return (TheoryResult::Unknown, None),
            LiaResult::Sat(m) => m,
        };

        // Probe LIA-implied equalities between interface terms whose model
        // values coincide but whose EUF classes differ.
        let eval = |lz: &mut Linearizer, t: TermId| -> Option<i128> {
            let l = lz.lin(ctx, t)?;
            let mut acc = l.constant;
            for (&v, &c) in &l.coeffs {
                acc = acc.checked_add(c.checked_mul(Rat::int(model[v]))?)?;
            }
            acc.is_integer().then(|| acc.floor())
        };
        let mut merged_any = false;
        let mut probes = 0usize;
        'outer: for i in 0..interface.len() {
            for j in (i + 1)..interface.len() {
                if probes >= limits.max_probe_pairs {
                    break 'outer;
                }
                let (t1, t2) = (interface[i], interface[j]);
                if euf.equal(t1, t2) {
                    continue;
                }
                let (Some(v1), Some(v2)) = (eval(&mut lz, t1), eval(&mut lz, t2)) else {
                    return (TheoryResult::Unknown, None);
                };
                if v1 != v2 {
                    continue;
                }
                probes += 1;
                let (Some(l1), Some(l2)) = (lz.lin(ctx, t1), lz.lin(ctx, t2)) else {
                    return (TheoryResult::Unknown, None);
                };
                let Some(d) = l1.checked_sub(&l2) else {
                    return (TheoryResult::Unknown, None);
                };
                // Implied equality iff both `d ≤ −1` and `d ≥ 1` are
                // infeasible under the current constraints.
                let mut lt_con = d.clone();
                let Some(c) = lt_con.constant.checked_add(Rat::ONE) else {
                    return (TheoryResult::Unknown, None);
                };
                lt_con.constant = c; // d + 1 ≤ 0 ≡ d ≤ −1
                let mut gt_con = match d.checked_scale(Rat::int(-1)) {
                    Some(g) => g,
                    None => return (TheoryResult::Unknown, None),
                };
                let Some(c) = gt_con.constant.checked_add(Rat::ONE) else {
                    return (TheoryResult::Unknown, None);
                };
                gt_con.constant = c; // −d + 1 ≤ 0 ≡ d ≥ 1
                let mut implied = true;
                for side in [lt_con, gt_con] {
                    let mut cs = constraints.clone();
                    cs.push(LinCon {
                        expr: side,
                        rel: Rel::Le,
                    });
                    let p = LiaProblem {
                        num_vars: lz.num_vars,
                        constraints: cs,
                        diseqs: diseqs.clone(),
                    };
                    let mut b = limits.lia_budget;
                    stats.simplex_calls += 1;
                    match simplex::solve_counted(&p, &mut b, &mut stats.pivots) {
                        LiaResult::Unsat => {}
                        LiaResult::Sat(_) => {
                            implied = false;
                            break;
                        }
                        LiaResult::Unknown => return (TheoryResult::Unknown, None),
                    }
                }
                if implied {
                    if !euf.merge(ctx, t1, t2) {
                        return (TheoryResult::Inconsistent, None);
                    }
                    merged_any = true;
                }
            }
        }
        if !merged_any {
            let mut out = Model::new();
            for (&t, &proxy) in &lz.var_of_term {
                if let Term::Var(v) = ctx.term(t) {
                    if let Some(&val) = model.get(proxy) {
                        out.insert(*v, val);
                    }
                }
            }
            return (TheoryResult::Consistent, Some(out));
        }
    }
    (TheoryResult::Unknown, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limits() -> TheoryLimits {
        TheoryLimits::default()
    }

    #[test]
    fn pure_lia_conflict() {
        let mut ctx = Context::new();
        let x = ctx.int_var("x");
        let five = ctx.int(5);
        let three = ctx.int(3);
        let a = ctx.le(five, x); // 5 ≤ x
        let b = ctx.le(x, three); // x ≤ 3
        assert_eq!(
            check(&ctx, &[(a, true), (b, true)], &limits()),
            TheoryResult::Inconsistent
        );
    }

    #[test]
    fn pure_euf_conflict() {
        let mut ctx = Context::new();
        let f = ctx.fn_sym("f", 1);
        let x = ctx.int_var("x");
        let y = ctx.int_var("y");
        let fx = ctx.app(f, vec![x]);
        let fy = ctx.app(f, vec![y]);
        let exy = ctx.eq(x, y);
        let efxy = ctx.eq(fx, fy);
        assert_eq!(
            check(&ctx, &[(exy, true), (efxy, false)], &limits()),
            TheoryResult::Inconsistent
        );
    }

    #[test]
    fn lia_equality_feeds_congruence() {
        // x ≤ y ∧ y ≤ x ∧ f(x) ≠ f(y) — needs LIA ⇒ EUF propagation.
        let mut ctx = Context::new();
        let f = ctx.fn_sym("f", 1);
        let x = ctx.int_var("x");
        let y = ctx.int_var("y");
        let fx = ctx.app(f, vec![x]);
        let fy = ctx.app(f, vec![y]);
        let a = ctx.le(x, y);
        let b = ctx.le(y, x);
        let e = ctx.eq(fx, fy);
        assert_eq!(
            check(&ctx, &[(a, true), (b, true), (e, false)], &limits()),
            TheoryResult::Inconsistent
        );
    }

    #[test]
    fn euf_equality_feeds_lia() {
        // x = y ∧ x ≥ 1 ∧ y ≤ 0 (equality via EUF path).
        let mut ctx = Context::new();
        let x = ctx.int_var("x");
        let y = ctx.int_var("y");
        let one = ctx.int(1);
        let zero = ctx.int(0);
        let e = ctx.eq(x, y);
        let a = ctx.le(one, x);
        let b = ctx.le(y, zero);
        assert_eq!(
            check(&ctx, &[(e, true), (a, true), (b, true)], &limits()),
            TheoryResult::Inconsistent
        );
    }

    #[test]
    fn function_result_flows_into_arithmetic() {
        // y = f(x) ∧ y < f(x) is inconsistent.
        let mut ctx = Context::new();
        let f = ctx.fn_sym("f", 1);
        let x = ctx.int_var("x");
        let y = ctx.int_var("y");
        let fx = ctx.app(f, vec![x]);
        let e = ctx.eq(y, fx);
        let l = ctx.lt(y, fx);
        assert_eq!(
            check(&ctx, &[(e, true), (l, true)], &limits()),
            TheoryResult::Inconsistent
        );
    }

    #[test]
    fn consistent_mixed_set() {
        // x = f(y) ∧ x ≥ 0 ∧ y ≥ x + 1 is satisfiable.
        let mut ctx = Context::new();
        let f = ctx.fn_sym("f", 1);
        let x = ctx.int_var("x");
        let y = ctx.int_var("y");
        let fy = ctx.app(f, vec![y]);
        let zero = ctx.int(0);
        let one = ctx.int(1);
        let e = ctx.eq(x, fy);
        let a = ctx.le(zero, x);
        let x1 = ctx.add(x, one);
        let b = ctx.le(x1, y);
        assert_eq!(
            check(&ctx, &[(e, true), (a, true), (b, true)], &limits()),
            TheoryResult::Consistent
        );
    }

    #[test]
    fn paper_example3_shape() {
        // Ψ: α1 > 0 ∧ x = f(α2) ∧ y = α1 entails y ≥ 0 (i.e. adding ¬(0 ≤ y)
        // is inconsistent).
        let mut ctx = Context::new();
        let f = ctx.fn_sym("f", 1);
        let a1 = ctx.int_var("alpha1");
        let a2 = ctx.int_var("alpha2");
        let x = ctx.int_var("x");
        let y = ctx.int_var("y");
        let zero = ctx.int(0);
        let fa2 = ctx.app(f, vec![a2]);
        let h1 = ctx.lt(zero, a1);
        let h2 = ctx.eq(x, fa2);
        let h3 = ctx.eq(y, a1);
        let goal = ctx.le(zero, y);
        assert_eq!(
            check(
                &ctx,
                &[(h1, true), (h2, true), (h3, true), (goal, false)],
                &limits()
            ),
            TheoryResult::Inconsistent
        );
        // And f(α2) = x is entailed (congruence through the equality).
        let goal2 = ctx.eq(fa2, x);
        assert_eq!(
            check(&ctx, &[(h2, true), (goal2, false)], &limits()),
            TheoryResult::Inconsistent
        );
    }

    #[test]
    fn nonlinear_products_are_opaque_but_congruent_syntactically(){
        // x*y = x*y is consistent trivially; x*y ≠ x*y is inconsistent
        // because hash-consing gives both sides one proxy.
        let mut ctx = Context::new();
        let x = ctx.int_var("x");
        let y = ctx.int_var("y");
        let p1 = ctx.mul(x, y);
        let p2 = ctx.mul(x, y);
        let e = ctx.eq(p1, p2);
        // eq() already folds t = t to true; build a ≠ through literals:
        assert_eq!(ctx.formula_to_string(e), "true");
        // 2*x stays linear: 2x ≤ 1 ∧ x ≥ 1 inconsistent.
        let two = ctx.int(2);
        let tx = ctx.mul(two, x);
        let one = ctx.int(1);
        let a = ctx.le(tx, one);
        let b = ctx.le(one, x);
        assert_eq!(
            check(&ctx, &[(a, true), (b, true)], &limits()),
            TheoryResult::Inconsistent
        );
    }
}
