//! Property tests cross-checking the SMT solver against brute-force
//! enumeration of small integer models.
//!
//! The crucial property is *soundness of `Unsat`*: whenever the solver
//! reports `Unsat`, no model may exist — the consolidation engine turns
//! `Unsat` answers into program rewrites, so a wrong `Unsat` would produce a
//! wrong program. We enumerate all assignments over a small domain; finding
//! any model for a formula the solver called `Unsat` is a test failure.
//! (Incompleteness in the other direction — a spurious `Sat` — is explicitly
//! allowed and separately measured.)

use proptest::prelude::*;
use udf_smt::ctx::{Context, Formula, FormulaId, Term, TermId};
use udf_smt::{SatResult, Solver};

/// A compact generator language for formulas over three integer variables
/// and one unary uninterpreted function.
#[derive(Clone, Debug)]
enum GenTerm {
    Const(i8),
    Var(u8),          // 0..3
    App(Box<GenTerm>),// f(t)
    Add(Box<GenTerm>, Box<GenTerm>),
    Sub(Box<GenTerm>, Box<GenTerm>),
    MulC(i8, Box<GenTerm>),
}

#[derive(Clone, Debug)]
enum GenFormula {
    Le(GenTerm, GenTerm),
    Lt(GenTerm, GenTerm),
    Eq(GenTerm, GenTerm),
    Not(Box<GenFormula>),
    And(Box<GenFormula>, Box<GenFormula>),
    Or(Box<GenFormula>, Box<GenFormula>),
}

fn gen_term_with(apps: bool) -> impl Strategy<Value = GenTerm> {
    let leaf = prop_oneof![
        (-4i8..5).prop_map(GenTerm::Const),
        (0u8..3).prop_map(GenTerm::Var),
    ];
    leaf.prop_recursive(3, 16, 2, move |inner| {
        let base = prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| GenTerm::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| GenTerm::Sub(Box::new(a), Box::new(b))),
            ((-3i8..4), inner.clone()).prop_map(|(c, t)| GenTerm::MulC(c, Box::new(t))),
        ];
        if apps {
            prop_oneof![base, inner.prop_map(|t| GenTerm::App(Box::new(t)))].boxed()
        } else {
            base.boxed()
        }
    })
}

fn gen_formula_with(apps: bool) -> impl Strategy<Value = GenFormula> {
    let term = move || gen_term_with(apps);
    let atom = prop_oneof![
        (term(), term()).prop_map(|(a, b)| GenFormula::Le(a, b)),
        (term(), term()).prop_map(|(a, b)| GenFormula::Lt(a, b)),
        (term(), term()).prop_map(|(a, b)| GenFormula::Eq(a, b)),
    ];
    atom.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| GenFormula::Not(Box::new(f))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| GenFormula::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner)
                .prop_map(|(a, b)| GenFormula::Or(Box::new(a), Box::new(b))),
        ]
    })
}

fn gen_formula() -> impl Strategy<Value = GenFormula> {
    gen_formula_with(true)
}

fn build_term(ctx: &mut Context, t: &GenTerm) -> TermId {
    match t {
        GenTerm::Const(c) => ctx.int(i64::from(*c)),
        GenTerm::Var(v) => {
            let name = ["x", "y", "z"][*v as usize];
            ctx.int_var(name)
        }
        GenTerm::App(a) => {
            let f = ctx.fn_sym("f", 1);
            let arg = build_term(ctx, a);
            ctx.app(f, vec![arg])
        }
        GenTerm::Add(a, b) => {
            let (ta, tb) = (build_term(ctx, a), build_term(ctx, b));
            ctx.add(ta, tb)
        }
        GenTerm::Sub(a, b) => {
            let (ta, tb) = (build_term(ctx, a), build_term(ctx, b));
            ctx.sub(ta, tb)
        }
        GenTerm::MulC(c, a) => {
            let tc = ctx.int(i64::from(*c));
            let ta = build_term(ctx, a);
            ctx.mul(tc, ta)
        }
    }
}

fn build_formula(ctx: &mut Context, f: &GenFormula) -> FormulaId {
    match f {
        GenFormula::Le(a, b) => {
            let (ta, tb) = (build_term(ctx, a), build_term(ctx, b));
            ctx.le(ta, tb)
        }
        GenFormula::Lt(a, b) => {
            let (ta, tb) = (build_term(ctx, a), build_term(ctx, b));
            ctx.lt(ta, tb)
        }
        GenFormula::Eq(a, b) => {
            let (ta, tb) = (build_term(ctx, a), build_term(ctx, b));
            ctx.eq(ta, tb)
        }
        GenFormula::Not(g) => {
            let fg = build_formula(ctx, g);
            ctx.not(fg)
        }
        GenFormula::And(a, b) => {
            let (fa, fb) = (build_formula(ctx, a), build_formula(ctx, b));
            ctx.and(fa, fb)
        }
        GenFormula::Or(a, b) => {
            let (fa, fb) = (build_formula(ctx, a), build_formula(ctx, b));
            ctx.or(fa, fb)
        }
    }
}

/// Reference evaluation over a concrete assignment; `f` is interpreted as a
/// fixed nontrivial function so congruence matters.
fn eval_term(ctx: &Context, t: TermId, env: &[i64; 3]) -> i64 {
    match ctx.term(t) {
        Term::Int(c) => *c,
        Term::Var(v) => {
            let name = ctx.var_name(*v);
            match name {
                "x" => env[0],
                "y" => env[1],
                "z" => env[2],
                other => panic!("unexpected var {other}"),
            }
        }
        Term::App(_, args) => {
            let a = eval_term(ctx, args[0], env);
            // Fixed interpretation: f(a) = a*a − 3 (deterministic, nonlinear).
            a.wrapping_mul(a).wrapping_sub(3)
        }
        Term::Add(a, b) => eval_term(ctx, *a, env).wrapping_add(eval_term(ctx, *b, env)),
        Term::Sub(a, b) => eval_term(ctx, *a, env).wrapping_sub(eval_term(ctx, *b, env)),
        Term::Mul(a, b) => eval_term(ctx, *a, env).wrapping_mul(eval_term(ctx, *b, env)),
    }
}

fn eval_formula(ctx: &Context, f: FormulaId, env: &[i64; 3]) -> bool {
    match ctx.formula(f) {
        Formula::True => true,
        Formula::False => false,
        Formula::Le(a, b) => eval_term(ctx, *a, env) <= eval_term(ctx, *b, env),
        Formula::Lt(a, b) => eval_term(ctx, *a, env) < eval_term(ctx, *b, env),
        Formula::Eq(a, b) => eval_term(ctx, *a, env) == eval_term(ctx, *b, env),
        Formula::Not(g) => !eval_formula(ctx, *g, env),
        Formula::And(a, b) => eval_formula(ctx, *a, env) && eval_formula(ctx, *b, env),
        Formula::Or(a, b) => eval_formula(ctx, *a, env) || eval_formula(ctx, *b, env),
    }
}

fn brute_force_has_model(ctx: &Context, f: FormulaId) -> Option<[i64; 3]> {
    const D: std::ops::RangeInclusive<i64> = -4..=4;
    for x in D {
        for y in D {
            for z in D {
                let env = [x, y, z];
                if eval_formula(ctx, f, &env) {
                    return Some(env);
                }
            }
        }
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// `Unsat` verdicts are sound: no small-domain model may exist.
    #[test]
    fn unsat_is_sound(gf in gen_formula()) {
        let mut ctx = Context::new();
        let f = build_formula(&mut ctx, &gf);
        let mut solver = Solver::new();
        let result = solver.check(&ctx, f);
        if result == SatResult::Unsat {
            if let Some(model) = brute_force_has_model(&ctx, f) {
                panic!(
                    "solver said Unsat but {model:?} satisfies {}",
                    ctx.formula_to_string(f)
                );
            }
        }
    }

    /// Purely linear formulas (no uninterpreted function): the solver is a
    /// complete decision procedure, so a brute-force model forces `Sat`.
    #[test]
    fn linear_sat_is_found(gf in gen_formula_with(false)) {
        let mut ctx = Context::new();
        let f = build_formula(&mut ctx, &gf);
        let mut solver = Solver::new();
        let result = solver.check(&ctx, f);
        if brute_force_has_model(&ctx, f).is_some() {
            prop_assert_ne!(result, SatResult::Unsat);
        }
    }
}
