//! Fail-soft execution demo: record quarantine under injected faults, and
//! budgeted consolidation degrading along the lattice
//! full ⊒ partial ⊒ sequential.
//!
//! ```text
//! cargo run --example failsoft
//! ```

use query_consolidation::dataflow::engine::{Engine, ErrorPolicy, ExecMode, QuerySet};
use query_consolidation::dataflow::fault::{silence_injected_panics, FaultPlan, FaultyEnv};
use query_consolidation::dataflow::ScalarEnv;
use query_consolidation::engine::{consolidate_many, ConsolidationBudget, Options};
use query_consolidation::lang::{
    library::Library, parse::parse_program, CostModel, FnLibrary, Interner,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    silence_injected_panics();
    let mut interner = Interner::new();
    let probe = interner.intern("probe");
    let mut lib = FnLibrary::new();
    lib.register(probe, "probe", 1, 25, |a| a[0]);

    // Four threshold queries sharing the expensive `probe` call.
    let programs: Vec<_> = (0..4u32)
        .map(|k| {
            parse_program(
                &format!(
                    "program q{k} @{k} (v) {{
                         p := probe(v);
                         spin := p;
                         while (spin > 50) {{ spin := spin - 1; }}
                         if (p > {}) {{ notify true; }} else {{ notify false; }}
                     }}",
                    k * 25
                ),
                &mut interner,
            )
            .expect("demo program parses")
        })
        .collect();
    let cm = CostModel::default();

    println!("=== budget lattice: same family, three budgets");
    for (label, budget) in [
        ("unlimited", ConsolidationBudget::UNLIMITED),
        (
            "20 solver queries",
            ConsolidationBudget::default().with_max_solver_queries(20),
        ),
        (
            "0 solver queries",
            ConsolidationBudget::default().with_max_solver_queries(0),
        ),
    ] {
        let opts = Options {
            budget,
            ..Options::default()
        };
        let merged = consolidate_many(&programs, &mut interner, &cm, &lib, &opts, false)?;
        println!(
            "  {label:>18}: tier {:>10}, {} entailment queries, {} pair(s) degraded",
            merged.stats.tier, merged.stats.entailment_queries, merged.stats.pairs_degraded
        );
    }

    // Run 100 records with 6 injected faults (lib error / panic / fuel burn,
    // chosen by seed) under the quarantine policy: the run completes, the
    // report names the casualties, and both modes agree on the survivors.
    let merged = consolidate_many(&programs, &mut interner, &cm, &lib, &Options::default(), false)?;
    let queries = QuerySet::compile_many(&programs, &cm, &|f| lib.cost(f))?
        .with_consolidated(&merged.program, &cm, &|f| lib.cost(f), merged.elapsed)?;
    let plan = FaultPlan::seeded(7, 100, 6);
    let env = FaultyEnv::new(ScalarEnv::new(1, lib), probe, plan);
    let records = FaultyEnv::<ScalarEnv>::index_records((0..100).map(|v| vec![v]));
    let engine = Engine::new(2)
        .with_error_policy(ErrorPolicy::Quarantine { max_errors: 16 })
        .with_fuel(10_000);

    println!("=== quarantine: 100 records, 6 injected faults");
    let many = engine.run(&env, &records, &queries, ExecMode::Many, false)?;
    let cons = engine.run(&env, &records, &queries, ExecMode::Consolidated, false)?;
    for e in &many.quarantine.entries {
        println!(
            "  record {:>3} quarantined: {} ({})",
            e.record, e.kind, e.detail
        );
    }
    println!(
        "  many counts         {:?}  ({} quarantined)",
        many.counts, many.quarantine.records_quarantined
    );
    println!(
        "  consolidated counts {:?}  ({} quarantined)",
        cons.counts, cons.quarantine.records_quarantined
    );
    println!(
        "  parity on survivors: {}",
        if many.counts == cons.counts && many.quarantine.records() == cons.quarantine.records() {
            "ok"
        } else {
            "VIOLATION"
        }
    );
    Ok(())
}
