//! The introduction's price-monitoring scenario: many parametrized flight
//! queries from one popular application, consolidated into a single UDF and
//! executed on the multi-worker dataflow engine.
//!
//! ```text
//! cargo run --release --example flight_search
//! ```

use query_consolidation::dataflow::engine::{Engine, ExecMode, QuerySet};
use query_consolidation::dataflow::env::UdfEnv;
use query_consolidation::engine::{consolidate_many, Options};
use query_consolidation::lang::{CostModel, Interner};
use query_consolidation::workloads::flight;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut interner = Interner::new();
    let (env, records) = flight::dataset_sized(4, &mut interner, 11);
    println!("dataset: {} flight rows", records.len());

    // 20 queries from the Mix family (direct / connecting / average-price
    // filters over Zipf-popular routes).
    let programs = flight::mix(20, 3, &mut interner);

    let cm = CostModel::default();
    struct EnvCost<'a>(&'a flight::FlightEnv);
    impl udf_lang::cost::FnCost for EnvCost<'_> {
        fn fn_cost(&self, f: udf_lang::intern::Symbol) -> udf_lang::cost::Cost {
            self.0.fn_cost(f)
        }
    }
    let merged = consolidate_many(
        &programs,
        &mut interner,
        &cm,
        &EnvCost(&env),
        &Options::default(),
        true,
    )?;
    println!(
        "consolidated {} queries in {:?} (source {} AST nodes → merged {})",
        programs.len(),
        merged.elapsed,
        programs.iter().map(|p| p.size()).sum::<usize>(),
        merged.program.size()
    );

    let qs = QuerySet::compile_many(&programs, &cm, &|f| env.fn_cost(f))?
        .with_consolidated(&merged.program, &cm, &|f| env.fn_cost(f), merged.elapsed)?;
    let engine = Engine::default();
    let many = engine.run(&env, &records, &qs, ExecMode::Many, false)?;
    let cons = engine.run(&env, &records, &qs, ExecMode::Consolidated, false)?;
    assert_eq!(many.counts, cons.counts, "plans must agree");

    println!("\nper-query matches (both plans agree):");
    for (k, (&id, &n)) in qs.query_ids.iter().zip(&many.counts).enumerate() {
        println!("  query {k:>2} ({id}) → {n} flights");
    }
    println!(
        "\nwhere_many {:?} vs where_consolidated {:?} → {:.2}x UDF speedup",
        many.udf_time,
        cons.udf_time,
        many.udf_time.as_secs_f64() / cons.udf_time.as_secs_f64().max(1e-9)
    );
    Ok(())
}
