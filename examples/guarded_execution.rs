//! Guarded execution: run a consolidated plan under the plan guard's
//! differential validation, then corrupt the plan and watch the guard
//! detect the divergence, demote the job to the sequential reference path,
//! and still return correct results — the fail-soft story of
//! `ARCHITECTURE.md` § Soundness and degradation.
//!
//! ```text
//! cargo run --example guarded_execution
//! ```

use query_consolidation::cache::PlanCache;
use query_consolidation::dataflow::compile::Op;
use query_consolidation::dataflow::engine::{
    Engine, EngineConfig, ExecBackend, ExecMode, QuerySet,
};
use query_consolidation::dataflow::{GuardPolicy, ScalarEnv};
use query_consolidation::engine::Options;
use query_consolidation::lang::{parse::parse_program, CostModel, FnLibrary, Interner};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut interner = Interner::new();
    let rank = interner.intern("rank");
    let mut lib = FnLibrary::new();
    lib.register(rank, "rank", 1, 25, |a| a[0] * 2 - 5);

    let programs: Vec<_> = (1..=3u32)
        .map(|id| {
            parse_program(
                &format!(
                    "program g{id} @{id} (v) {{
                         r := rank(v);
                         if (r > {}) {{ notify true; }} else {{ notify false; }}
                     }}",
                    i64::from(id) * 20
                ),
                &mut interner,
            )
        })
        .collect::<Result<_, _>>()?;

    let cm = CostModel::default();
    let cache = Arc::new(PlanCache::default());
    let fc = |f| query_consolidation::lang::library::Library::cost(&lib, f);
    let (queries, _, _) = QuerySet::compile_consolidated_cached(
        &programs,
        &mut interner,
        &cm,
        &lib,
        &fc,
        &Options::default(),
        false,
        &cache,
        ExecBackend::PerRecord,
    )?;
    let records: Vec<Vec<i64>> = (0..64).map(|v| vec![v]).collect();
    let env = ScalarEnv::new(1, lib);
    let engine = || {
        Engine::new(2).with_config(EngineConfig {
            guard: GuardPolicy::audit_all(),
            plan_cache: Some(Arc::clone(&cache)),
            ..EngineConfig::default()
        })
    };

    // Healthy plan: every record is shadow-validated against the sequential
    // reference path; Theorem 1 of the paper says zero mismatches.
    let healthy = engine().run(&env, &records, &queries, ExecMode::Consolidated, false)?;
    let g = healthy.guard.as_ref().expect("audit produced a report");
    println!(
        "healthy plan : counts {:?}, {} shadow runs, {} mismatches, demoted={}",
        healthy.counts, g.shadow_runs, g.mismatches, g.demoted
    );
    assert_eq!(g.mismatches, 0);

    // Corrupted plan: flip one Notify instruction. The guard catches the
    // divergence, demotes to the per-query sequential path, and evicts the
    // poisoned cache entry — the caller still gets correct counts.
    let mut corrupted = queries.clone();
    let plan = corrupted.consolidated.as_mut().expect("consolidated plan");
    for op in &mut plan.ops {
        if let Op::Notify { value, .. } = op {
            *value = !*value;
            break;
        }
    }
    let healed = engine().run(&env, &records, &corrupted, ExecMode::Consolidated, false)?;
    let g = healed.guard.as_ref().expect("audit produced a report");
    println!(
        "corrupted    : counts {:?}, {} mismatches, demoted={}, cache evictions={}",
        healed.counts,
        g.mismatches,
        g.demoted,
        cache.stats().invalidations
    );
    assert!(g.demoted, "the corrupted plan must demote");
    assert_eq!(healed.counts, healthy.counts, "demotion self-heals the answer");
    println!("the guard caught the corruption and the sequential rerun healed it");
    Ok(())
}
