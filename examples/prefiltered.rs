//! Pre-filtered consolidation: synthesize a sound cross-query pre-filter
//! from a set of guarded UDFs, attach it to the consolidated plan, and show
//! that executing with pushdown on skips most records while reproducing the
//! pushdown-off notifications bit-for-bit.
//!
//! ```text
//! cargo run --example prefiltered
//! ```
//!
//! The queries follow the shape pushdown synthesis targets (see
//! `ARCHITECTURE.md` § Predicate pushdown): a cheap guard over a record
//! field *nests* around an expensive library call, so under the negated
//! guard the call is unreachable and the verifier can prove that skipping
//! the record changes nothing.

use query_consolidation::dataflow::engine::{
    Engine, ExecBackend, ExecMode, QuerySet,
};
use query_consolidation::dataflow::ScalarEnv;
use query_consolidation::engine::Options;
use query_consolidation::lang::{parse::parse_program, CostModel, FnLibrary, Interner};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut interner = Interner::new();
    let score = interner.intern("score");
    let mut lib = FnLibrary::new();
    // An "expensive" text-scoring function (cost 45 — think a full-text
    // scan); `a` is the cheap record field guarding it.
    lib.register(score, "score", 1, 45, |a| a[0] % 97);

    // Three standing queries: each guards the expensive call with a
    // different threshold over the cheap field.
    let programs: Vec<_> = [(1u32, 40i64, 10i64), (2, 60, 50), (3, 55, 30)]
        .iter()
        .map(|&(id, k, t)| {
            parse_program(
                &format!(
                    "program q{id} @{id} (a, b) {{
                         if (a >= {k}) {{
                             if (score(b) > {t}) {{ notify true; }} else {{ notify false; }}
                         }} else {{ notify false; }}
                     }}"
                ),
                &mut interner,
            )
        })
        .collect::<Result<_, _>>()?;

    let cm = CostModel::default();
    let records: Vec<Vec<i64>> = (0..100).map(|i| vec![i, i * 3 + 1]).collect();
    let env = ScalarEnv::new(2, lib.clone());
    let fc = |f| query_consolidation::lang::library::Library::cost(&lib, f);

    let mut reports = Vec::new();
    for prefilter in [false, true] {
        let opts = Options {
            prefilter,
            ..Options::default()
        };
        let cache = Arc::new(query_consolidation::cache::PlanCache::default());
        let (qs, merged, _) = QuerySet::compile_consolidated_cached(
            &programs,
            &mut interner,
            &cm,
            &lib,
            &fc,
            &opts,
            false,
            &cache,
            ExecBackend::PerRecord,
        )?;
        if let Some(pf) = &merged.prefilter {
            println!(
                "synthesized pre-filter ({} paths, {} entailment queries):",
                pf.paths_checked, pf.entailment_queries
            );
            println!(
                "    {}",
                query_consolidation::lang::pretty::bool_expr(&pf.cond, &interner)
            );
        }
        let report = Engine::new(2).run(&env, &records, &qs, ExecMode::Consolidated, true)?;
        println!(
            "pushdown {:>3}: counts {:?}, skipped {:>2}/{} records, cost {}",
            if prefilter { "on" } else { "off" },
            report.counts,
            report.prefilter_skipped,
            report.records,
            report.cost.unwrap_or(0),
        );
        reports.push(report);
    }

    // The guarantee the verifier bought: identical observables, lower cost.
    assert_eq!(reports[0].counts, reports[1].counts, "notifications must agree");
    assert_eq!(reports[0].missing, reports[1].missing);
    assert!(reports[1].prefilter_skipped > 0, "the guard family must skip");
    assert!(reports[1].cost <= reports[0].cost, "skipping must not cost more");
    println!("pushdown was unobservable: identical notifications, lower cost");
    Ok(())
}
