//! Quickstart: consolidate the paper's Example 1 — two flight-filter UDFs
//! that share the expensive airline-name lookup — and verify behaviour and
//! cost on concrete inputs.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use query_consolidation::engine::{consolidate_pair, Options};
use query_consolidation::lang::{
    analysis::rename_locals, parse::parse_program, CostModel, FnLibrary, Interner, Interp,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut interner = Interner::new();

    // The external library: `toLower` stands for the paper's
    // `airline.name.toLower()` chain — an expensive pure function. Airline
    // names are interned integers: 1 = "united", 2 = "southwest".
    let to_lower = interner.intern("toLower");
    let mut lib = FnLibrary::new();
    lib.register(to_lower, "toLower", 1, 30, |a| a[0] & 0xff);

    // f1: flights operated by United or Southwest.
    let f1 = parse_program(
        "program f1 @1 (airline, price) {
             name := toLower(airline);
             if (name == 1) { notify true; }
             else { if (name == 2) { notify true; } else { notify false; } }
         }",
        &mut interner,
    )?;
    // f2: flights under $200 operated by United.
    let f2 = parse_program(
        "program f2 @2 (airline, price) {
             if (price >= 200) { notify false; }
             else { if (toLower(airline) == 1) { notify true; } else { notify false; } }
         }",
        &mut interner,
    )?;

    println!("=== input UDFs");
    println!("{}", query_consolidation::lang::pretty::program(&f1, &interner));
    println!("{}", query_consolidation::lang::pretty::program(&f2, &interner));

    // Consolidate: Π₁ ⊗ Π₂.
    let merged = consolidate_pair(
        &f1,
        &f2,
        &mut interner,
        &CostModel::default(),
        &lib,
        &Options::default(),
    )?;
    println!("=== consolidated ({:?}, rules {:?})", merged.elapsed, merged.stats);
    println!(
        "{}",
        query_consolidation::lang::pretty::program(&merged.program, &interner)
    );

    // Definition 1, checked dynamically: same notifications, cost never
    // larger than the sum.
    let r1 = rename_locals(&f1, &mut interner, "a$");
    let r2 = rename_locals(&f2, &mut interner, "b$");
    let interp = Interp::new(CostModel::default(), &lib);
    println!("=== behaviour check (airline, price) → f1, f2 | merged | costs");
    for airline in [1i64, 2, 3] {
        for price in [150i64, 250] {
            let a = interp.run(&r1, &[airline, price], &interner)?;
            let b = interp.run(&r2, &[airline, price], &interner)?;
            let m = interp.run(&merged.program, &[airline, price], &interner)?;
            let same = m.notifications.get(f1.id) == a.notifications.get(f1.id)
                && m.notifications.get(f2.id) == b.notifications.get(f2.id);
            println!(
                "({airline}, {price}) → {:?}, {:?} | merged {:?} {:?} | {} + {} vs {}  {}",
                a.notifications.get(f1.id).expect("f1 notifies"),
                b.notifications.get(f2.id).expect("f2 notifies"),
                m.notifications.get(f1.id).expect("merged notifies @1"),
                m.notifications.get(f2.id).expect("merged notifies @2"),
                a.cost,
                b.cost,
                m.cost,
                if same && m.cost <= a.cost + b.cost {
                    "ok"
                } else {
                    "VIOLATION"
                }
            );
        }
    }
    Ok(())
}
