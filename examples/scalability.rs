//! A miniature of the paper's Figure 10: sweep the number of news-domain
//! queries and watch `where_many` grow linearly while `where_consolidated`
//! stays roughly flat.
//!
//! ```text
//! cargo run --release --example scalability
//! ```

use query_consolidation::dataflow::engine::{Engine, ExecMode, QuerySet};
use query_consolidation::dataflow::env::UdfEnv;
use query_consolidation::engine::{consolidate_many, Options};
use query_consolidation::lang::{CostModel, Interner};
use query_consolidation::workloads::news;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut interner = Interner::new();
    let env = news::NewsEnv::new(&mut interner);
    let records = news::dataset_sized(3000, 5);
    let cm = CostModel::default();
    struct EnvCost<'a>(&'a news::NewsEnv);
    impl udf_lang::cost::FnCost for EnvCost<'_> {
        fn fn_cost(&self, f: udf_lang::intern::Symbol) -> udf_lang::cost::Cost {
            self.0.fn_cost(f)
        }
    }

    println!("{:>6} {:>12} {:>12} {:>12}", "nUDFs", "many(ms)", "cons(ms)", "consolid(ms)");
    let bc = news::families()
        .into_iter()
        .find(|f| f.label == "BC")
        .expect("news BC family");
    for n in [4usize, 8, 16, 32] {
        let programs = (bc.build)(n, 9, &mut interner);
        let merged = consolidate_many(
            &programs,
            &mut interner,
            &cm,
            &EnvCost(&env),
            &Options::default(),
            true,
        )?;
        let qs = QuerySet::compile_many(&programs, &cm, &|f| env.fn_cost(f))?
            .with_consolidated(&merged.program, &cm, &|f| env.fn_cost(f), merged.elapsed)?;
        let engine = Engine::default();
        let many = engine.run(&env, &records, &qs, ExecMode::Many, false)?;
        let cons = engine.run(&env, &records, &qs, ExecMode::Consolidated, false)?;
        assert_eq!(many.counts, cons.counts);
        println!(
            "{n:>6} {:>12.2} {:>12.2} {:>12.2}",
            many.udf_time.as_secs_f64() * 1e3,
            cons.udf_time.as_secs_f64() * 1e3,
            merged.elapsed.as_secs_f64() * 1e3,
        );
    }
    Ok(())
}
