//! Durable service recovery: run a journaled consolidation service, crash
//! it mid-epoch at a simulated crash point, recover from the write-ahead
//! journal, and finish the schedule — then prove the recovered run is
//! bit-identical to an uncrashed reference (same epoch output digests,
//! same final accounting).
//!
//! ```text
//! cargo run --example service_recovery
//! ```
//!
//! See `DESIGN.md` § Durability & crash recovery for the journal format,
//! the crash points, and the exactly-once replay rules this demonstrates.

use query_consolidation::dataflow::ScalarEnv;
use query_consolidation::lang::{parse::parse_program, FnLibrary, Interner};
use query_consolidation::serve::{
    CrashPoint, JournalError, ServeConfig, ServeError, Service, SimCrash, TenantId,
};

type Env = ScalarEnv;

fn build_env() -> (Env, Interner) {
    let mut interner = Interner::new();
    let score = interner.intern("score");
    let mut lib = FnLibrary::new();
    lib.register(score, "score", 1, 15, |a| a[0] * 3 - 7);
    (ScalarEnv::new(1, lib), interner)
}

fn config(sim: Option<SimCrash>) -> ServeConfig {
    ServeConfig {
        queue_capacity: 64,
        epoch_batch_limit: 16,
        // Small so this short schedule crosses a checkpoint compaction.
        journal_checkpoint_every: 4,
        sim_crash: sim,
        ..ServeConfig::default()
    }
}

/// The schedule both runs replay: alternating registrations, submissions,
/// and epochs. Generated up front so the crashed run can resume mid-way.
enum Op {
    Register(u32, u32, i64),
    Submit(Vec<Vec<i64>>),
    Epoch,
}

fn schedule() -> Vec<Op> {
    let mut ops = Vec::new();
    for (i, th) in [5i64, 11, 23].iter().enumerate() {
        ops.push(Op::Register(i as u32, i as u32, *th));
    }
    let mut v = 0i64;
    for round in 0..6 {
        let n = 6 + round;
        ops.push(Op::Submit((v..v + n).map(|x| vec![x % 40]).collect()));
        v += n;
        ops.push(Op::Epoch);
    }
    ops.push(Op::Epoch);
    ops
}

/// Applies one op; epochs return `(epoch, output_digest)`.
fn apply(svc: &mut Service<Env>, op: &Op) -> Result<Option<(u64, u64)>, ServeError> {
    match op {
        Op::Register(tenant, id, th) => {
            let q = parse_program(
                &format!(
                    "program q{id} @{id} (v) {{
                         s := score(v);
                         if (s > {th}) {{ notify true; }} else {{ notify false; }}
                     }}"
                ),
                svc.interner_mut(),
            )
            .expect("example program parses");
            svc.register(TenantId(*tenant), &q).map(|_| None)
        }
        Op::Submit(recs) => svc.submit(recs.clone()).map(|_| None),
        Op::Epoch => svc
            .run_epoch()
            .map(|rep| Some((rep.epoch, rep.output_digest))),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Reference: the same schedule, journaling off.
    let (env, interner) = build_env();
    let mut reference = Service::new(env, config(None));
    *reference.interner_mut() = interner;
    let mut ref_digests = std::collections::BTreeMap::new();
    for op in &schedule() {
        if let Some((e, d)) = apply(&mut reference, op)? {
            ref_digests.insert(e, d);
        }
    }
    println!("reference: {} epochs, {:?}", ref_digests.len(), reference.accounting());

    // Journaled run with a crash armed mid-schedule: the 9th journal frame
    // (an epoch commit) tears half-written, as a power cut would leave it.
    let dir = std::env::temp_dir().join("udf-serve-recovery-example");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir)?;
    let sim = SimCrash {
        point: CrashPoint::MidAppend,
        after: 9,
        seed: 41,
    };
    let (env, interner) = build_env();
    let mut svc = Service::open(env, interner, config(Some(sim)), &dir)?;
    let ops = schedule();
    let mut digests = std::collections::BTreeMap::new();
    let mut i = 0usize;
    while i < ops.len() {
        match apply(&mut svc, &ops[i]) {
            Ok(Some((e, d))) => {
                digests.insert(e, d);
                i += 1;
            }
            Ok(None) => i += 1,
            Err(ServeError::Journal(JournalError::SimulatedCrash(point))) => {
                println!("crash: {point} at op {i} — dropping the service on the floor");
                drop(svc);
                let (env, interner) = build_env();
                let (recovered, report) = Service::recover(env, interner, config(None), &dir)?;
                println!(
                    "recovered: {} frames replayed, {} skipped (checkpointed), \
                     {} salvaged, torn tail: {}",
                    report.frames_replayed,
                    report.frames_skipped,
                    report.frames_salvaged,
                    report.truncated_tail
                );
                for inc in &report.incidents {
                    println!("  incident: {inc}");
                }
                // An epoch both observed live and replayed from the journal
                // tail must agree — a free consistency check.
                for (e, d) in &report.replayed_epoch_digests {
                    if let Some(prev) = digests.insert(*e, *d) {
                        assert_eq!(prev, *d, "epoch {e}: live/replayed digest mismatch");
                    }
                }
                svc = recovered;
                // One frame per acknowledged op: if the crashed op's frame
                // never became durable, the op was lost — re-issue it.
                let durable = svc.journal_seq().expect("journaled") as usize;
                if durable == i {
                    println!("  op {i} was lost with the crash: re-issuing");
                } else {
                    println!("  op {i} was already durable: skipping");
                    i += 1;
                }
            }
            Err(e) => return Err(e.into()),
        }
    }
    println!("recovered run: {} epochs, {:?}", digests.len(), svc.accounting());

    // Bit-identical: same digest chain, same accounting — journal on or off,
    // crash or no crash.
    assert_eq!(digests, ref_digests, "epoch digest chains must match");
    assert_eq!(svc.accounting(), reference.accounting());
    for (e, d) in &digests {
        println!("epoch {e}: digest {d:016x}");
    }
    println!("recovery OK: crashed run is bit-identical to the reference");
    drop(svc);
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
