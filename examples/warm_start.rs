//! Plan-cache warm start: consolidate a query family once (cold — full
//! solver work), resubmit it (warm — served from the cache with zero SMT
//! checks), then save the cache to a snapshot file and reload it, as a
//! restarted service would.
//!
//! ```text
//! cargo run --example warm_start
//! ```
//!
//! See `ARCHITECTURE.md` § Plan cache for the key derivation (canonical
//! UDF-set hash × options × cost model × backend) and the snapshot format.

use query_consolidation::cache::{CacheConfig, PlanCache, PlanOutcome};
use query_consolidation::engine::Options;
use query_consolidation::lang::cost::UniformFnCost;
use query_consolidation::lang::{parse::parse_program, CostModel, Interner};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut interner = Interner::new();
    let programs: Vec<_> = (1..=8u32)
        .map(|id| {
            parse_program(
                &format!(
                    "program w{id} @{id} (temp, wind) {{
                         chill := temp - wind * 3;
                         if (chill < {}) {{ notify true; }} else {{ notify false; }}
                     }}",
                    i64::from(id) * 4
                ),
                &mut interner,
            )
        })
        .collect::<Result<_, _>>()?;

    let cm = CostModel::default();
    let opts = Options::default();
    let cache = PlanCache::default();

    // Cold: consolidates for real — the solver discharges entailments.
    let (cold, outcome) = query_consolidation::cache::consolidate_many_cached(
        &cache, &programs, &mut interner, &cm, &UniformFnCost(20), &opts, false,
        query_consolidation::dataflow::engine::ExecBackend::PerRecord,
    )?;
    println!(
        "cold: {outcome:?} in {:?} — {} SMT checks, plan size {}",
        cold.elapsed,
        cold.stats.solver.checks,
        cold.program.body.size()
    );
    assert_eq!(outcome, PlanOutcome::Miss);

    // Warm: the same submission is a pure lookup.
    let (warm, outcome) = query_consolidation::cache::consolidate_many_cached(
        &cache, &programs, &mut interner, &cm, &UniformFnCost(20), &opts, false,
        query_consolidation::dataflow::engine::ExecBackend::PerRecord,
    )?;
    println!(
        "warm: {outcome:?} in {:?} — {} SMT checks",
        warm.elapsed, warm.stats.solver.checks
    );
    assert_eq!(outcome, PlanOutcome::Hit);
    assert_eq!(warm.stats.solver.checks, 0, "a hit does no solver work");
    assert_eq!(
        query_consolidation::lang::pretty::program(&cold.program, &interner),
        query_consolidation::lang::pretty::program(&warm.program, &interner),
        "the cached plan is the consolidated plan"
    );

    // Persist and reload, as a service restart would.
    let path = std::env::temp_dir().join(format!("warm-start-{}.snap", std::process::id()));
    cache.save(&path)?;
    let restored = PlanCache::load(&path, CacheConfig::default())?;
    let _ = std::fs::remove_file(&path);
    let (reloaded, outcome) = query_consolidation::cache::consolidate_many_cached(
        &restored, &programs, &mut interner, &cm, &UniformFnCost(20), &opts, false,
        query_consolidation::dataflow::engine::ExecBackend::PerRecord,
    )?;
    println!("after restart: {outcome:?} — {} SMT checks", reloaded.stats.solver.checks);
    assert_eq!(outcome, PlanOutcome::Hit, "snapshots warm-start the next run");
    println!("cache stats: {:?}", restored.stats());
    Ok(())
}
