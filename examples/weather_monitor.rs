//! Loop fusion in action (the paper's Example 2 / Example 6 pattern): two
//! weather UDFs — one tracking a running sum of monthly temperatures, one a
//! running maximum — are fused into a single loop that calls the expensive
//! `tempOfMonth` accessor once per iteration.
//!
//! ```text
//! cargo run --example weather_monitor
//! ```

use query_consolidation::dataflow::engine::{Engine, ExecMode, QuerySet};
use query_consolidation::dataflow::env::UdfEnv;
use query_consolidation::engine::{consolidate_many, Options};
use query_consolidation::lang::{parse::parse_program, CostModel, Interner};
use query_consolidation::workloads::weather::{dataset_sized, WeatherEnv, ACCESSOR_COST};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut interner = Interner::new();
    let env = WeatherEnv::new(&mut interner);
    let records = dataset_sized(200, 7);

    // g1: cities whose yearly temperature sum exceeds a threshold.
    let g1 = parse_program(
        "program g1 @1 (city) {
             s := 0; m := 1;
             while (m <= 12) { t := tempOfMonth(m); s := s + t; m := m + 1; }
             if (s > 120) { notify true; } else { notify false; }
         }",
        &mut interner,
    )?;
    // g2: cities whose maximum monthly temperature exceeds a threshold.
    let g2 = parse_program(
        "program g2 @2 (city) {
             mx := tempOfMonth(1); m := 2;
             while (m <= 12) { t := tempOfMonth(m); if (t > mx) { mx := t; } m := m + 1; }
             if (mx > 40) { notify true; } else { notify false; }
         }",
        &mut interner,
    )?;

    let merged = consolidate_many(
        &[g1.clone(), g2.clone()],
        &mut interner,
        &CostModel::default(),
        &query_consolidation::lang::cost::UniformFnCost(ACCESSOR_COST),
        &Options::default(),
        false,
    )?;
    println!("=== consolidated (rules {:?})", merged.stats);
    println!(
        "{}",
        query_consolidation::lang::pretty::program(&merged.program, &interner)
    );

    // Run both plans over the dataset and compare.
    let cm = CostModel::default();
    let programs = vec![g1, g2];
    let qs = QuerySet::compile_many(&programs, &cm, &|f| env.fn_cost(f))?
        .with_consolidated(&merged.program, &cm, &|f| env.fn_cost(f), merged.elapsed)?;
    let engine = Engine::new(4);
    let many = engine.run(&env, &records, &qs, ExecMode::Many, true)?;
    let cons = engine.run(&env, &records, &qs, ExecMode::Consolidated, true)?;
    println!("selected per query, where_many:         {:?}", many.counts);
    println!("selected per query, where_consolidated: {:?}", cons.counts);
    assert_eq!(many.counts, cons.counts, "plans must agree");
    println!(
        "abstract cost: {} (sequential) vs {} (consolidated) → {:.2}x",
        many.cost.expect("tracked"),
        cons.cost.expect("tracked"),
        many.cost.unwrap() as f64 / cons.cost.unwrap() as f64
    );
    println!(
        "wall time:     {:?} vs {:?}",
        many.udf_time, cons.udf_time
    );
    Ok(())
}
