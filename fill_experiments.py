#!/usr/bin/env python3
"""Injects measured benchmark tables into EXPERIMENTS.md.

Usage: python3 fill_experiments.py
Reads fig9_full.log / fig10_full.log / ablation.log when present and fills
the corresponding `<!-- *_TABLE:BEGIN -->` … `<!-- *_TABLE:END -->` regions
with fenced code blocks. The regions survive the rewrite, so re-running
after a fresh benchmark replaces the old tables instead of appending
(running against the legacy single `<!-- *_TABLE -->` marker upgrades it to
the delimited form).
"""
import os
import re

TABLES = {
    "FIG9_TABLE": "fig9_full.log",
    "FIG10_TABLE": "fig10_full.log",
    "ABLATION_TABLE": "ablation.log",
}


def render(log: str) -> str:
    with open(log, encoding="utf-8") as fh:
        body = fh.read().strip()
    # Drop cargo noise lines.
    lines = [
        ln
        for ln in body.splitlines()
        if not re.match(r"\s*(Compiling|Finished|Running|warning)", ln)
    ]
    return "```text\n" + "\n".join(lines) + "\n```"


def main() -> None:
    with open("EXPERIMENTS.md", encoding="utf-8") as fh:
        text = fh.read()
    for name, log in TABLES.items():
        if not os.path.exists(log):
            continue
        begin = f"<!-- {name}:BEGIN -->"
        end = f"<!-- {name}:END -->"
        legacy = f"<!-- {name} -->"
        block = f"{begin}\n{render(log)}\n{end}"
        if begin in text and end in text:
            text = re.sub(
                re.escape(begin) + r".*?" + re.escape(end),
                lambda _m, b=block: b,
                text,
                flags=re.S,
            )
        elif legacy in text:
            text = text.replace(legacy, block)
        else:
            print(f"marker for {name} not found; skipped")
    with open("EXPERIMENTS.md", "w", encoding="utf-8") as fh:
        fh.write(text)
    print("EXPERIMENTS.md updated")


if __name__ == "__main__":
    main()
