#!/usr/bin/env python3
"""Injects measured benchmark tables into EXPERIMENTS.md.

Usage: python3 fill_experiments.py
Reads fig9_full.log / fig10_full.log / ablation.log when present and replaces
the corresponding <!-- *_TABLE --> markers with fenced code blocks.
"""
import os
import re

MARKERS = {
    "<!-- FIG9_TABLE -->": "fig9_full.log",
    "<!-- FIG10_TABLE -->": "fig10_full.log",
    "<!-- ABLATION_TABLE -->": "ablation.log",
}


def main() -> None:
    with open("EXPERIMENTS.md", encoding="utf-8") as fh:
        text = fh.read()
    for marker, log in MARKERS.items():
        if marker not in text:
            continue
        if not os.path.exists(log):
            continue
        with open(log, encoding="utf-8") as fh:
            body = fh.read().strip()
        # Drop cargo noise lines.
        lines = [
            ln
            for ln in body.splitlines()
            if not re.match(r"\s*(Compiling|Finished|Running|warning)", ln)
        ]
        block = "```text\n" + "\n".join(lines) + "\n```"
        text = text.replace(marker, block)
    with open("EXPERIMENTS.md", "w", encoding="utf-8") as fh:
        fh.write(text)
    print("EXPERIMENTS.md updated")


if __name__ == "__main__":
    main()
