//! `qc` — a command-line front end for program consolidation.
//!
//! ```text
//! qc consolidate <file> [--if3|--if4|--if5] [--no-loop-fusion] [--syntactic]
//! qc run <file> --args v1,v2,…  [--fn name=cost]…
//! qc bounds <file> [--iterations N]
//! ```
//!
//! `<file>` contains one or more `program … { … }` definitions (all sharing a
//! parameter list, each with a distinct `@id`). `consolidate` prints the
//! merged program plus rule statistics; `run` executes every source program
//! and the merged one on the supplied arguments and reports notifications
//! and costs; `bounds` prints static cost bounds per program.
//!
//! External functions are interpreted as deterministic hash-based stubs (the
//! CLI has no real dataset behind it); declare their cost with `--fn f=40`.

use std::collections::HashMap;
use std::process::ExitCode;

use query_consolidation::engine::{consolidate_many, EntailmentMode, IfPolicy, Options};
use query_consolidation::lang::{
    costs, parse::parse_programs, pretty, CostModel, Interner, Interp,
};

struct StubLib {
    costs: HashMap<String, u64>,
    interner_names: Vec<String>,
}

impl udf_lang::library::Library for StubLib {
    fn call(
        &self,
        f: udf_lang::intern::Symbol,
        args: &[i64],
    ) -> Result<i64, udf_lang::library::LibError> {
        // Deterministic stub: a hash of the function index and arguments.
        let mut acc = f.index() as i64 + 17;
        for (k, a) in args.iter().enumerate() {
            acc = acc.wrapping_mul(31).wrapping_add(a.wrapping_mul(k as i64 + 1));
        }
        Ok(acc.rem_euclid(1_000))
    }

    fn cost(&self, f: udf_lang::intern::Symbol) -> u64 {
        self.interner_names
            .get(f.index())
            .and_then(|n| self.costs.get(n))
            .copied()
            .unwrap_or(udf_lang::library::DEFAULT_CALL_COST)
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  qc consolidate <file> [--if3|--if4|--if5] [--no-loop-fusion] [--syntactic]\n  qc run <file> --args v1,v2,... [--fn name=cost]...\n  qc bounds <file> [--iterations N]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let Some(path) = args.get(1) else {
        return usage();
    };
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut interner = Interner::new();
    let programs = match parse_programs(&src, &mut interner) {
        Ok(p) if !p.is_empty() => p,
        Ok(_) => {
            eprintln!("error: {path} contains no programs");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut fn_costs: HashMap<String, u64> = HashMap::new();
    let mut run_args: Vec<i64> = Vec::new();
    let mut opts = Options::default();
    let mut iterations: Option<u64> = None;
    let mut it = args.iter().skip(2);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--if3" => opts.if_policy = IfPolicy::AlwaysIf3,
            "--if4" => opts.if_policy = IfPolicy::AlwaysIf4,
            "--if5" => opts.if_policy = IfPolicy::AlwaysIf5,
            "--no-loop-fusion" => opts.loop_fusion = false,
            "--syntactic" => opts.mode = EntailmentMode::Syntactic,
            "--args" => {
                let Some(list) = it.next() else { return usage() };
                for v in list.split(',').filter(|s| !s.is_empty()) {
                    match v.trim().parse() {
                        Ok(n) => run_args.push(n),
                        Err(_) => {
                            eprintln!("error: bad argument `{v}`");
                            return ExitCode::FAILURE;
                        }
                    }
                }
            }
            "--fn" => {
                let Some(spec) = it.next() else { return usage() };
                let Some((name, cost)) = spec.split_once('=') else {
                    return usage();
                };
                let Ok(cost) = cost.parse() else { return usage() };
                fn_costs.insert(name.to_owned(), cost);
            }
            "--iterations" => {
                iterations = it.next().and_then(|v| v.parse().ok());
            }
            other => {
                eprintln!("error: unknown flag `{other}`");
                return usage();
            }
        }
    }

    let lib = StubLib {
        costs: fn_costs,
        interner_names: (0..interner.len())
            .map(|k| {
                interner
                    .resolve(udf_lang::intern::Symbol::from_index(k))
                    .to_owned()
            })
            .collect(),
    };
    let cm = CostModel::default();

    match cmd.as_str() {
        "consolidate" => {
            let merged = match consolidate_many(&programs, &mut interner, &cm, &lib, &opts, false)
            {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!(
                "// consolidated {} programs in {:?}",
                programs.len(),
                merged.elapsed
            );
            println!("// rules: {:?}", merged.stats);
            println!(
                "// size: {} AST nodes (sources: {})",
                merged.program.size(),
                programs.iter().map(|p| p.size()).sum::<usize>()
            );
            print!("{}", pretty::program(&merged.program, &interner));
            ExitCode::SUCCESS
        }
        "run" => {
            let merged = match consolidate_many(&programs, &mut interner, &cm, &lib, &opts, false)
            {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let interp = Interp::new(cm, &lib);
            let mut total = 0u64;
            for p in &programs {
                match interp.run(p, &run_args, &interner) {
                    Ok(r) => {
                        println!(
                            "program @{}: notifications {:?}, cost {}",
                            p.id.0,
                            r.notifications.iter().collect::<Vec<_>>(),
                            r.cost
                        );
                        total += r.cost;
                    }
                    Err(e) => {
                        eprintln!("error running @{}: {e}", p.id.0);
                        return ExitCode::FAILURE;
                    }
                }
            }
            match interp.run(&merged.program, &run_args, &interner) {
                Ok(r) => {
                    println!(
                        "consolidated: notifications {:?}, cost {} (sequential total {total})",
                        r.notifications.iter().collect::<Vec<_>>(),
                        r.cost
                    );
                    if r.cost > total {
                        eprintln!("BUG: consolidated cost exceeds sequential cost");
                        return ExitCode::FAILURE;
                    }
                }
                Err(e) => {
                    eprintln!("error running consolidated program: {e}");
                    return ExitCode::FAILURE;
                }
            }
            ExitCode::SUCCESS
        }
        "bounds" => {
            let bopts = costs::BoundsOptions {
                loop_iterations: iterations,
            };
            for p in &programs {
                let b = costs::stmt_bounds(&p.body, &cm, &lib, &bopts);
                println!(
                    "program @{}: min {} max {}",
                    p.id.0,
                    b.min,
                    b.max.map_or("∞".to_owned(), |m| m.to_string())
                );
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
