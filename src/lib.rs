//! # query-consolidation
//!
//! A reproduction of *Consolidation of Queries with User-Defined Functions*
//! (Sousa, Dillig, Vytiniotis, Dillig, Gkantsidis — PLDI 2014): a purely
//! static, SMT-driven optimizer that merges many user-defined functions
//! (UDFs) operating on the same input into one consolidated program whose
//! execution cost is never larger — and often far smaller — than running the
//! UDFs sequentially.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`lang`] — the imperative UDF language, cost model, and interpreter,
//! * [`smt`] — the from-scratch lazy SMT solver (CDCL + EUF + linear integer
//!   arithmetic) used for entailment checks,
//! * [`engine`] — the consolidation calculus and the Ω algorithm,
//! * [`dataflow`] — the Naiad-like multi-worker execution substrate with
//!   `where_many` / `where_consolidated` operators,
//! * [`cache`] — the consolidated-plan cache keyed on canonical UDF-set
//!   hashes, with textual snapshots for warm starts across runs,
//! * [`serve`] — the long-lived consolidation service (delta plan surgery,
//!   admission control, tenant isolation, and the write-ahead epoch journal
//!   with crash recovery),
//! * [`workloads`] — the five evaluation domains (Weather, Flight, News,
//!   Twitter, Stock) with dataset generators and query families.
//!
//! See `examples/quickstart.rs` for an end-to-end walk-through and
//! `EXPERIMENTS.md` for the paper-versus-measured record.

#![forbid(unsafe_code)]

pub use consolidate as engine;
pub use naiad_lite as dataflow;
pub use plan_cache as cache;
pub use udf_data as workloads;
pub use udf_lang as lang;
pub use udf_serve as serve;
pub use udf_smt as smt;
