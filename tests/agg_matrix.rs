//! User-defined aggregation execution matrix: worker-count determinism and
//! per-UDAF fault isolation.
//!
//! The invariants under test:
//!
//! 1. **Worker-count determinism** — the consolidated multi-state pass
//!    produces bit-identical final states *and* bit-identical quarantine
//!    reports at 1, 2, and 8 workers (the merge tree is driver-side and
//!    depends only on the chunk grid, never on scheduling).
//! 2. **Mode agreement** — [`AggMode::Separate`], [`AggMode::Consolidated`],
//!    and a sequential single-shard reference fold agree bit-for-bit, under
//!    fault injection included.
//! 3. **Per-UDAF quarantine** — a fold panic excludes the faulting record
//!    from *that* definition's aggregate only; co-resident definitions in
//!    the same shared scan still absorb the record.

use naiad_lite::fault::{silence_injected_panics, FaultKind, FaultPlan, FaultyEnv};
use naiad_lite::{AggMode, AggQuerySet, AggReport, Engine, ErrorPolicy, ScalarEnv};
use proptest::prelude::*;
use udf_lang::agg::{parse_agg, AggDef};
use udf_lang::intern::{Interner, Symbol};
use udf_lang::FnLibrary;

/// One generated aggregation shape. `Last` is the non-homomorphic one
/// (`merge` keeps the right state), pinned to the sequential shard.
#[derive(Debug, Clone, Copy)]
enum Shape {
    Sum(i64),
    CountGt(i64),
    SumSq,
    Last,
}

impl Shape {
    fn source(self, id: usize) -> String {
        match self {
            Shape::Sum(w) => format!(
                "aggregate s{id} @{id} (v) {{ state s = 0;
                     fold  {{ p := probe(v); s := s + {w} * p; }}
                     merge {{ s := s + rhs_s; }} }}"
            ),
            Shape::CountGt(t) => format!(
                "aggregate c{id} @{id} (v) {{ state c = 0;
                     fold  {{ if (probe(v) > {t}) {{ c := c + 1; }} }}
                     merge {{ c := c + rhs_c; }} }}"
            ),
            Shape::SumSq => format!(
                "aggregate q{id} @{id} (v) {{ state ss = 0;
                     fold  {{ p := probe(v); ss := ss + p * p; }}
                     merge {{ ss := ss + rhs_ss; }} }}"
            ),
            Shape::Last => format!(
                "aggregate l{id} @{id} (v) {{ state l = -1;
                     fold  {{ l := probe(v); }}
                     merge {{ l := rhs_l; }} }}"
            ),
        }
    }

    fn homomorphic(self) -> bool {
        !matches!(self, Shape::Last)
    }
}

fn defs_of(shapes: &[Shape], interner: &mut Interner) -> (Vec<AggDef>, Vec<bool>) {
    let defs = shapes
        .iter()
        .enumerate()
        .map(|(id, s)| parse_agg(&s.source(id), interner).expect("generated shape parses"))
        .collect();
    let proved = shapes.iter().map(|s| s.homomorphic()).collect();
    (defs, proved)
}

fn quarantine_engine(workers: usize) -> Engine {
    Engine::new(workers).with_error_policy(ErrorPolicy::Quarantine { max_errors: 10_000 })
}

/// Runs the query set over `n_records` faulted scalar records. `probe` is
/// the trigger symbol, interned in the same interner as the definitions.
fn run(
    workers: usize,
    mode: AggMode,
    queries: &AggQuerySet,
    probe: Symbol,
    plan: &FaultPlan,
    n_records: usize,
    interner: &Interner,
) -> AggReport {
    let mut lib = FnLibrary::new();
    lib.register(probe, "probe", 1, 20, |a| a[0]);
    let env = FaultyEnv::new(ScalarEnv::new(1, lib), probe, plan.clone());
    let records =
        FaultyEnv::<ScalarEnv>::index_records((0..n_records).map(|v| vec![v as i64 - 40]));
    quarantine_engine(workers)
        .run_agg(&env, &records, queries, interner, mode)
        .expect("quarantine policy absorbs record faults")
}

/// The observable output: (states, post-demotion flags, quarantine report).
fn observable(r: &AggReport) -> (Vec<Vec<i64>>, Vec<bool>, naiad_lite::QuarantineReport) {
    (r.states.clone(), r.proved.clone(), r.quarantine.clone())
}

fn shape_strategy() -> impl Strategy<Value = Shape> {
    prop_oneof![
        (-3i64..4).prop_map(Shape::Sum),
        (-50i64..120).prop_map(Shape::CountGt),
        Just(Shape::SumSq),
        Just(Shape::Last),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Invariants 1 + 2, property-driven: arbitrary shape mixes, record
    /// counts crossing the chunk boundary, and seeded lib-error/panic
    /// faults. Every (worker count × mode) combination plus the sequential
    /// reference must agree bit-for-bit on states, post-demotion flags, and
    /// the quarantine report.
    #[test]
    fn aggregates_are_bit_identical_across_workers_and_modes(
        shapes in prop::collection::vec(shape_strategy(), 1..5),
        n_records in 1usize..700,
        faults in 0usize..20,
        seed in any::<u64>(),
    ) {
        silence_injected_panics();
        let mut interner = Interner::new();
        let probe = interner.intern("probe");
        let (defs, proved) = defs_of(&shapes, &mut interner);
        let queries = AggQuerySet::new(defs.clone(), proved);
        let sequential = AggQuerySet::sequential(defs);
        let plan = FaultPlan::seeded_kinds(
            seed,
            n_records,
            faults.min(n_records),
            &[FaultKind::LibError, FaultKind::Panic],
        );

        let reference = observable(&run(
            1, AggMode::Consolidated, &sequential, probe, &plan, n_records, &interner,
        ));
        for workers in [1usize, 2, 8] {
            for mode in [AggMode::Separate, AggMode::Consolidated] {
                let got =
                    observable(&run(workers, mode, &queries, probe, &plan, n_records, &interner));
                prop_assert_eq!(
                    (got.0, got.2),
                    (reference.0.clone(), reference.2.clone()),
                    "{workers} workers, {mode:?} must match the sequential reference"
                );
            }
        }
    }
}

#[test]
fn a_fold_panic_quarantines_only_the_owning_udaf() {
    silence_injected_panics();
    let mut interner = Interner::new();
    let probe = interner.intern("probe");
    // `risky` calls the trigger; `safe` never does and must keep every
    // record — including the faulted one — in its aggregate.
    let risky = parse_agg(
        "aggregate risky @1 (v) { state s = 0;
             fold  { p := probe(v); s := s + p; }
             merge { s := s + rhs_s; } }",
        &mut interner,
    )
    .expect("parses");
    let safe = parse_agg(
        "aggregate safe @2 (v) { state n = 0;
             fold  { n := n + 1; }
             merge { n := n + rhs_n; } }",
        &mut interner,
    )
    .expect("parses");
    let queries = AggQuerySet::new(vec![risky, safe], vec![true, true]);
    let faulted = 137usize;
    let n_records = 400usize;
    let plan = FaultPlan::single(faulted, FaultKind::Panic);

    let mut baseline: Option<(Vec<Vec<i64>>, naiad_lite::QuarantineReport)> = None;
    for workers in [1usize, 2, 8] {
        for mode in [AggMode::Separate, AggMode::Consolidated] {
            let rep = run(workers, mode, &queries, probe, &plan, n_records, &interner);
            // Exactly one (record, definition) pair is excluded.
            assert_eq!(rep.quarantine.records_quarantined, 1, "{workers}w {mode:?}");
            let e = &rep.quarantine.entries[0];
            assert_eq!(e.record, faulted);
            assert_eq!(e.query, Some(udf_lang::ast::ProgId(1)), "risky owns the fault");
            // risky sums all records except the faulted one (values v - 40).
            let sum_all: i64 = (0..n_records as i64).map(|v| v - 40).sum();
            assert_eq!(rep.states[0], vec![sum_all - (faulted as i64 - 40)]);
            // safe still counts every record.
            assert_eq!(rep.states[1], vec![n_records as i64]);
            match &baseline {
                None => baseline = Some((rep.states.clone(), rep.quarantine.clone())),
                Some((s, q)) => {
                    assert_eq!(&rep.states, s, "{workers} workers {mode:?}");
                    assert_eq!(&rep.quarantine, q, "{workers} workers {mode:?}");
                }
            }
        }
    }
}

/// Invariant 2 with *proved* flags coming from the real prover, over a real
/// domain workload: the stock SUM/CNT/VAR/MIX families at test scale.
#[test]
fn domain_families_agree_across_modes_and_workers() {
    let mut interner = Interner::new();
    let env = udf_data::stock::StockEnv::new(&mut interner);
    let records = udf_data::stock::dataset_sized(12, 300, 7);
    for family in udf_data::agg::families(udf_data::DomainKind::Stock) {
        let defs = (family.build)(4, 21, &mut interner);
        let queries = AggQuerySet::prove(defs.clone(), &mut interner, &Default::default())
            .expect("family proves");
        assert_eq!(
            queries.proved.iter().filter(|p| **p).count() == defs.len(),
            family.provable,
            "family {}",
            family.label
        );
        let reference = quarantine_engine(1)
            .run_agg(
                &env,
                &records,
                &AggQuerySet::sequential(defs),
                &interner,
                AggMode::Consolidated,
            )
            .expect("reference runs");
        for workers in [1usize, 2, 8] {
            for mode in [AggMode::Separate, AggMode::Consolidated] {
                let rep = quarantine_engine(workers)
                    .run_agg(&env, &records, &queries, &interner, mode)
                    .expect("family runs");
                assert_eq!(
                    rep.states, reference.states,
                    "family {} at {workers} workers {mode:?}",
                    family.label
                );
                assert!(rep.quarantine.is_clean(), "healthy dataset");
            }
        }
    }
}
