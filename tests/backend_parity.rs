// Integration tests may unwrap freely; the clippy gate denies it in src/.
#![allow(clippy::unwrap_used)]

//! Backend parity: the columnar batch executor is observationally
//! indistinguishable from the per-record reference interpreter.
//!
//! The engine's contract for [`naiad_lite::engine::ExecBackend`] is that the
//! backend knob changes *throughput only*. Every observable of a job —
//! per-query notification counts, missing totals, exact abstract cost,
//! quarantine report (entries, ordering, kinds, details, retry accounting),
//! and plan-guard verdicts — must be bit-identical between
//! `ExecBackend::PerRecord` and `ExecBackend::Columnar`, including under
//! injected library errors, UDF panics, fuel exhaustion mid-batch, and
//! transient faults drained by retry.

use naiad_lite::engine::{
    Engine, EngineConfig, ErrorPolicy, ExecBackend, ExecMode, JobReport, QuerySet,
};
use naiad_lite::fault::{silence_injected_panics, FaultKind, FaultPlan, FaultyEnv};
use naiad_lite::{GuardAction, GuardPolicy, RetryPolicy, ScalarEnv};
use proptest::prelude::*;
use udf_lang::ast::Program;
use udf_lang::cost::CostModel;
use udf_lang::intern::Interner;
use udf_lang::library::Library;
use udf_lang::FnLibrary;

fn library(interner: &mut Interner) -> FnLibrary {
    let probe = interner.intern("probe");
    let half = interner.intern("half");
    let mut lib = FnLibrary::new();
    lib.register(probe, "probe", 1, 20, |a| a[0]);
    lib.register(half, "half", 1, 10, |a| a[0] / 2);
    lib
}

/// Threshold queries with a data-dependent spin loop, so lanes of one batch
/// diverge (different trip counts) and fuel exhaustion can strike mid-loop.
fn queries(interner: &mut Interner, n: u32) -> Vec<Program> {
    (0..n)
        .map(|k| {
            udf_lang::parse::parse_program(
                &format!(
                    "program q{k} @{k} (v) {{
                         p := probe(v);
                         spin := half(p);
                         while (spin > 40) {{ spin := spin - 1; }}
                         if (p > {}) {{ notify true; }} else {{ notify false; }}
                     }}",
                    k * 10
                ),
                interner,
            )
            .expect("test program parses")
        })
        .collect()
}

struct Workload {
    env: FaultyEnv<ScalarEnv>,
    records: Vec<(usize, Vec<i64>)>,
    queries: QuerySet,
}

fn workload(n_queries: u32, n_records: usize, faults: FaultPlan) -> Workload {
    let mut interner = Interner::new();
    let lib = library(&mut interner);
    let programs = queries(&mut interner, n_queries);
    let cm = CostModel::default();
    let merged = consolidate::consolidate_many(
        &programs,
        &mut interner,
        &cm,
        &lib,
        &consolidate::Options::default(),
        false,
    )
    .expect("test queries consolidate");
    let queries = QuerySet::compile_many(&programs, &cm, &|f| lib.cost(f))
        .expect("many compiles")
        .with_consolidated(&merged.program, &cm, &|f| lib.cost(f), Default::default())
        .expect("merged compiles");
    let trigger = interner.intern("probe");
    let env = FaultyEnv::new(ScalarEnv::new(1, lib), trigger, faults)
        .with_burn_value(1_000_000_000);
    let records =
        FaultyEnv::<ScalarEnv>::index_records((0..n_records as i64).map(|v| vec![v % 97]));
    Workload {
        env,
        records,
        queries,
    }
}

/// Runs the workload once per backend with otherwise identical
/// configuration, resetting the environment's transient-fault counters in
/// between (they are consumable state, not part of the workload).
fn run_both(
    w: &Workload,
    mode: ExecMode,
    fuel: Option<u64>,
    retry: RetryPolicy,
    guard: GuardPolicy,
) -> (JobReport, JobReport) {
    let run = |backend: ExecBackend| {
        w.env.reset_transients();
        Engine::new(3)
            .with_config(EngineConfig {
                error_policy: ErrorPolicy::Quarantine { max_errors: 4096 },
                backend,
                retry,
                guard,
                fuel,
                ..EngineConfig::default()
            })
            .run(&w.env, &w.records, &w.queries, mode, true)
            .expect("quarantine policy never fails the job")
    };
    (run(ExecBackend::PerRecord), run(ExecBackend::Columnar))
}

/// Asserts every observable of the two reports is bit-identical. Wall-clock
/// and metrics snapshots are excluded by construction (neither is part of
/// the backend contract).
fn assert_parity(per_record: &JobReport, columnar: &JobReport, ctx: &str) {
    assert_eq!(per_record.counts, columnar.counts, "{ctx}: counts");
    assert_eq!(per_record.missing, columnar.missing, "{ctx}: missing");
    assert_eq!(per_record.cost, columnar.cost, "{ctx}: cost");
    assert_eq!(per_record.records, columnar.records, "{ctx}: records");
    assert_eq!(
        per_record.quarantine, columnar.quarantine,
        "{ctx}: quarantine report"
    );
    let g = |r: &JobReport| {
        r.guard
            .as_ref()
            .map(|g| (g.shadow_runs, g.mismatches, g.demoted))
    };
    assert_eq!(g(per_record), g(columnar), "{ctx}: guard verdict");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6 })]

    /// Seeded chaos sweep: random fault plans over all four fault kinds, a
    /// fuel budget tight enough that burn records exhaust it mid-batch, and
    /// retries that drain some (not all) transients. Both execution modes,
    /// both backends, every observable identical.
    #[test]
    fn backends_agree_under_chaos(
        seed in any::<u64>(),
        n_faults in 0usize..24,
        fuel in prop_oneof![Just(600u64), Just(5_000u64), Just(50_000u64)],
        retries in 0u32..3,
    ) {
        silence_injected_panics();
        let faults = FaultPlan::seeded_kinds(
            seed,
            96,
            n_faults,
            &[
                FaultKind::LibError,
                FaultKind::Panic,
                FaultKind::FuelBurn,
                FaultKind::Transient(2),
            ],
        );
        let w = workload(4, 96, faults);
        for mode in [ExecMode::Many, ExecMode::Consolidated] {
            let (p, c) = run_both(
                &w,
                mode,
                Some(fuel),
                RetryPolicy::immediate(retries),
                GuardPolicy::default(),
            );
            assert_parity(&p, &c, &format!("seed {seed} mode {mode:?}"));
        }
    }

    /// The plan guard's shadow sampler sees the same records and reaches the
    /// same verdicts whichever backend produced the primary outputs (the
    /// shadow itself always runs the sequential reference).
    #[test]
    fn guard_verdicts_agree(seed in any::<u64>(), n_faults in 0usize..12) {
        silence_injected_panics();
        let faults = FaultPlan::seeded_kinds(
            seed,
            64,
            n_faults,
            &[FaultKind::LibError, FaultKind::Transient(1)],
        );
        let w = workload(3, 64, faults);
        let guard = GuardPolicy {
            on_mismatch: GuardAction::LogOnly,
            ..GuardPolicy::audit_all()
        };
        let (p, c) = run_both(
            &w,
            ExecMode::Consolidated,
            None,
            RetryPolicy::immediate(2),
            guard,
        );
        assert_parity(&p, &c, &format!("guarded seed {seed}"));
        let g = p.guard.expect("guard was active");
        prop_assert!(g.shadow_runs > 0, "audit_all must shadow records");
        prop_assert_eq!(g.mismatches, 0, "Theorem 1: consolidated == sequential");
    }
}

/// Deterministic spot check: a fuel budget that lands *inside* the spin
/// loop quarantines the same records with the same per-entry detail under
/// both backends — the batch executor's fuel accounting is exact, not
/// approximate.
#[test]
fn fuel_exhaustion_mid_batch_is_exact() {
    let w = workload(4, 128, FaultPlan::none());
    let mut quarantined = 0usize;
    for fuel in [5, 12, 20, 35, 60, 100, 350] {
        let (p, c) = run_both(
            &w,
            ExecMode::Many,
            Some(fuel),
            RetryPolicy::default(),
            GuardPolicy::default(),
        );
        assert_parity(&p, &c, &format!("fuel {fuel}"));
        quarantined += p.quarantine.records_quarantined;
    }
    assert!(quarantined > 0, "the sweep must actually exhaust fuel");
}

/// Deterministic spot check: transients that exhaust the retry budget carry
/// exact per-entry retry counts; transients that drain recover with
/// identical recovery accounting.
#[test]
fn retry_accounting_is_identical() {
    silence_injected_panics();
    let mut plan = FaultPlan::none();
    for r in [3usize, 17, 18, 40, 77] {
        plan.insert(r, FaultKind::Transient(2));
    }
    plan.insert(50, FaultKind::Panic);
    let w = workload(3, 96, plan);
    for retries in [0u32, 1, 2, 3] {
        let (p, c) = run_both(
            &w,
            ExecMode::Consolidated,
            None,
            RetryPolicy::immediate(retries),
            GuardPolicy::default(),
        );
        assert_parity(&p, &c, &format!("retries {retries}"));
        assert_eq!(
            p.quarantine.retry_attempts, c.quarantine.retry_attempts,
            "retries {retries}: attempts"
        );
        assert_eq!(
            p.quarantine.records_recovered, c.quarantine.records_recovered,
            "retries {retries}: recovered"
        );
    }
}
