//! Service churn under chaos: a seeded schedule of submissions,
//! registrations, deregistrations and epochs, interleaved with injected
//! UDF faults, must (1) never silently drop a record — the admission
//! accounting `admitted == processed + shed + queued` holds after every
//! epoch — and (2) be fully deterministic: the same seed replays to the
//! same epoch-by-epoch transcript (ci/chaos.sh additionally diffs two
//! whole same-seed runs at the process level).

use naiad_lite::engine::RetryPolicy;
use naiad_lite::fault::{silence_injected_panics, FaultKind, FaultPlan, FaultyEnv};
use naiad_lite::{ScalarEnv, UdfEnv};
use std::time::Duration;
use udf_lang::intern::Interner;
use udf_lang::{FnLibrary, Library};
use udf_serve::{Admission, ServeConfig, Service, TenantId};

type Env = FaultyEnv<ScalarEnv>;
type Rec = <Env as UdfEnv>::Rec;

/// Folds the `CHAOS_SEED` environment variable (see `ci/chaos.sh`) into a
/// base seed, so the schedule sweeps across seed families while staying
/// fully reproducible within one run.
fn chaos(seed: u64) -> u64 {
    match std::env::var("CHAOS_SEED") {
        Ok(s) => seed ^ s.trim().parse::<u64>().unwrap_or(0),
        Err(_) => seed,
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn service(seed: u64) -> Service<Env> {
    let mut interner = Interner::new();
    let probe = interner.intern("probe");
    let half = interner.intern("half");
    let mut lib = FnLibrary::new();
    lib.register(probe, "probe", 1, 20, |a| a[0]);
    lib.register(half, "half", 1, 10, |a| a[0] / 2);
    // Faults hit `probe` callers only; Transient(1) models a fault the
    // single-retry policy recovers from.
    let faults = FaultPlan::seeded_kinds(
        seed,
        4096,
        48,
        &[
            FaultKind::LibError,
            FaultKind::Transient(1),
            FaultKind::Panic,
        ],
    );
    let env = FaultyEnv::new(ScalarEnv::new(1, lib), probe, faults);
    let mut svc = Service::new(
        env,
        ServeConfig {
            queue_capacity: 96,
            epoch_batch_limit: 32,
            deadline_epochs: 2,
            tenant_quarantine_budget: 4,
            retry: RetryPolicy {
                max_retries: 1,
                base_backoff: Duration::ZERO,
                max_backoff: Duration::ZERO,
                jitter_seed: seed,
            },
            ..ServeConfig::default()
        },
    );
    *svc.interner_mut() = interner;
    svc
}

/// Replays a seeded schedule and returns its transcript plus the final
/// accounting line.
fn run_schedule(seed: u64) -> String {
    silence_injected_panics();
    let mut svc = service(seed);
    let mut rng = seed;
    let mut next_record: i64 = 0;
    let mut next_query: u32 = 0;
    let mut live: Vec<(TenantId, u32)> = Vec::new();
    let mut transcript = String::new();
    for step in 0..120u32 {
        match splitmix64(&mut rng) % 4 {
            // Submit a batch (possibly rejected at full queue — explicit).
            0 => {
                let n = 1 + (splitmix64(&mut rng) % 24) as i64;
                let recs: Vec<Rec> = (next_record..next_record + n)
                    .map(|v| (v as usize, vec![v % 512]))
                    .collect();
                next_record += n;
                let a = svc.submit(recs);
                transcript.push_str(&format!("step {step}: submit {n} -> {a:?}\n"));
            }
            // Register a query for a random tenant; every third query is
            // hostile (calls the fault trigger).
            1 => {
                let tenant = TenantId((splitmix64(&mut rng) % 3) as u32);
                let id = next_query;
                next_query += 1;
                let hostile = id % 3 == 2;
                let f = if hostile { "probe" } else { "half" };
                let th = (splitmix64(&mut rng) % 40) as i64;
                let q = udf_lang::parse::parse_program(
                    &format!(
                        "program q{id} @{id} (v) {{
                             p := {f}(v);
                             if (p > {th}) {{ notify true; }} else {{ notify false; }}
                         }}"
                    ),
                    svc.interner_mut(),
                )
                .expect("generated program parses");
                let out = svc.register(tenant, &q).expect("register");
                live.push((tenant, id));
                transcript.push_str(&format!(
                    "step {step}: register t{} q{id} -> {}\n",
                    tenant.0,
                    match out {
                        udf_serve::ChurnOutcome::Applied(_) => "applied",
                        udf_serve::ChurnOutcome::AppliedSolo => "solo",
                        udf_serve::ChurnOutcome::Deferred => "deferred",
                        udf_serve::ChurnOutcome::Cancelled => "cancelled",
                    }
                ));
            }
            // Deregister a random live query.
            2 => {
                if !live.is_empty() {
                    let i = (splitmix64(&mut rng) as usize) % live.len();
                    let (tenant, id) = live.remove(i);
                    let out = svc
                        .deregister(tenant, udf_lang::ast::ProgId(id))
                        .expect("deregister");
                    transcript.push_str(&format!(
                        "step {step}: deregister t{} q{id} -> {}\n",
                        tenant.0,
                        match out {
                            udf_serve::ChurnOutcome::Deferred => "deferred",
                            udf_serve::ChurnOutcome::Cancelled => "cancelled",
                            _ => "applied",
                        }
                    ));
                }
            }
            // Run an epoch; the zero-silent-drop invariant must hold after
            // every one.
            _ => {
                let rep = svc.run_epoch().expect("epoch");
                let acc = svc.accounting();
                assert!(
                    acc.balanced(),
                    "step {step}: records leaked: {acc:?} after epoch {}",
                    rep.epoch
                );
                transcript.push_str(&format!(
                    "step {step}: epoch {} mode={:?} processed={} shed={} demoted={:?} tenants={:?}\n",
                    rep.epoch,
                    rep.mode,
                    rep.processed,
                    rep.shed.len(),
                    rep.demoted,
                    rep.tenants,
                ));
            }
        }
    }
    // Drain what's left so the lifetime accounting closes out too.
    for _ in 0..8 {
        let rep = svc.run_epoch().expect("drain epoch");
        assert!(svc.accounting().balanced(), "drain epoch {}", rep.epoch);
    }
    transcript.push_str(&format!("final {:?}", svc.accounting()));
    transcript
}

#[test]
fn seeded_churn_never_drops_records_silently() {
    let t = run_schedule(chaos(0xc0de));
    assert!(t.contains("epoch"), "schedule must have run epochs");
}

#[test]
fn same_seed_churn_replays_identically() {
    let seed = chaos(0xfeed);
    assert_eq!(
        run_schedule(seed),
        run_schedule(seed),
        "same-seed churn schedules must produce identical transcripts"
    );
}

#[test]
fn distinct_seeds_exercise_distinct_schedules() {
    // A weak but useful canary that the seed actually reaches the
    // schedule: two far-apart seeds should not produce the same
    // transcript (they drive different op sequences).
    let a = run_schedule(chaos(0x1111_2222_3333_4444));
    let b = run_schedule(chaos(0x9999_8888_7777_6666));
    assert_ne!(a, b);
}
