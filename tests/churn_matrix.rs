//! Service churn under chaos: a seeded schedule of submissions,
//! registrations, deregistrations and epochs, interleaved with injected
//! UDF faults, must (1) never silently drop a record — the admission
//! accounting `admitted == processed + shed + queued` holds after every
//! epoch — and (2) be fully deterministic: the same seed replays to the
//! same epoch-by-epoch transcript (ci/chaos.sh additionally diffs two
//! whole same-seed runs at the process level).

use naiad_lite::engine::RetryPolicy;
use naiad_lite::fault::{silence_injected_panics, FaultKind, FaultPlan, FaultyEnv};
use naiad_lite::{ScalarEnv, UdfEnv};
use std::time::Duration;
use udf_lang::intern::Interner;
use udf_lang::FnLibrary;
use udf_serve::{
    Admission, ChurnOutcome, CrashPoint, JournalError, ServeConfig, ServeError, Service, SimCrash,
    TenantId,
};

type Env = FaultyEnv<ScalarEnv>;
type Rec = <Env as UdfEnv>::Rec;

/// Folds the `CHAOS_SEED` environment variable (see `ci/chaos.sh`) into a
/// base seed, so the schedule sweeps across seed families while staying
/// fully reproducible within one run.
fn chaos(seed: u64) -> u64 {
    match std::env::var("CHAOS_SEED") {
        Ok(s) => seed ^ s.trim().parse::<u64>().unwrap_or(0),
        Err(_) => seed,
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Builds the faulty environment plus the interner its library was
/// interned against (recovery needs them as a pair).
fn chaos_env(seed: u64) -> (Env, Interner) {
    let mut interner = Interner::new();
    let probe = interner.intern("probe");
    let half = interner.intern("half");
    let mut lib = FnLibrary::new();
    lib.register(probe, "probe", 1, 20, |a| a[0]);
    lib.register(half, "half", 1, 10, |a| a[0] / 2);
    // Faults hit `probe` callers only; Transient(1) models a fault the
    // single-retry policy recovers from.
    let faults = FaultPlan::seeded_kinds(
        seed,
        4096,
        48,
        &[
            FaultKind::LibError,
            FaultKind::Transient(1),
            FaultKind::Panic,
        ],
    );
    (FaultyEnv::new(ScalarEnv::new(1, lib), probe, faults), interner)
}

fn service(seed: u64) -> Service<Env> {
    let (env, interner) = chaos_env(seed);
    let mut svc = Service::new(
        env,
        ServeConfig {
            queue_capacity: 96,
            epoch_batch_limit: 32,
            deadline_epochs: 2,
            tenant_quarantine_budget: 4,
            retry: RetryPolicy {
                max_retries: 1,
                base_backoff: Duration::ZERO,
                max_backoff: Duration::ZERO,
                jitter_seed: seed,
            },
            ..ServeConfig::default()
        },
    );
    *svc.interner_mut() = interner;
    svc
}

/// Replays a seeded schedule and returns its transcript plus the final
/// accounting line.
fn run_schedule(seed: u64) -> String {
    silence_injected_panics();
    let mut svc = service(seed);
    let mut rng = seed;
    let mut next_record: i64 = 0;
    let mut next_query: u32 = 0;
    let mut live: Vec<(TenantId, u32)> = Vec::new();
    let mut transcript = String::new();
    for step in 0..120u32 {
        match splitmix64(&mut rng) % 4 {
            // Submit a batch (possibly rejected at full queue — explicit).
            0 => {
                let n = 1 + (splitmix64(&mut rng) % 24) as i64;
                let recs: Vec<Rec> = (next_record..next_record + n)
                    .map(|v| (v as usize, vec![v % 512]))
                    .collect();
                next_record += n;
                let a = svc.submit(recs).expect("journal off: infallible");
                transcript.push_str(&format!("step {step}: submit {n} -> {a:?}\n"));
            }
            // Register a query for a random tenant; every third query is
            // hostile (calls the fault trigger).
            1 => {
                let tenant = TenantId((splitmix64(&mut rng) % 3) as u32);
                let id = next_query;
                next_query += 1;
                let hostile = id % 3 == 2;
                let f = if hostile { "probe" } else { "half" };
                let th = (splitmix64(&mut rng) % 40) as i64;
                let q = udf_lang::parse::parse_program(
                    &format!(
                        "program q{id} @{id} (v) {{
                             p := {f}(v);
                             if (p > {th}) {{ notify true; }} else {{ notify false; }}
                         }}"
                    ),
                    svc.interner_mut(),
                )
                .expect("generated program parses");
                let out = svc.register(tenant, &q).expect("register");
                live.push((tenant, id));
                transcript.push_str(&format!(
                    "step {step}: register t{} q{id} -> {}\n",
                    tenant.0,
                    match out {
                        udf_serve::ChurnOutcome::Applied(_) => "applied",
                        udf_serve::ChurnOutcome::AppliedSolo => "solo",
                        udf_serve::ChurnOutcome::Deferred => "deferred",
                        udf_serve::ChurnOutcome::Cancelled => "cancelled",
                    }
                ));
            }
            // Deregister a random live query.
            2 => {
                if !live.is_empty() {
                    let i = (splitmix64(&mut rng) as usize) % live.len();
                    let (tenant, id) = live.remove(i);
                    let out = svc
                        .deregister(tenant, udf_lang::ast::ProgId(id))
                        .expect("deregister");
                    transcript.push_str(&format!(
                        "step {step}: deregister t{} q{id} -> {}\n",
                        tenant.0,
                        match out {
                            udf_serve::ChurnOutcome::Deferred => "deferred",
                            udf_serve::ChurnOutcome::Cancelled => "cancelled",
                            _ => "applied",
                        }
                    ));
                }
            }
            // Run an epoch; the zero-silent-drop invariant must hold after
            // every one.
            _ => {
                let rep = svc.run_epoch().expect("epoch");
                let acc = svc.accounting();
                assert!(
                    acc.balanced(),
                    "step {step}: records leaked: {acc:?} after epoch {}",
                    rep.epoch
                );
                transcript.push_str(&format!(
                    "step {step}: epoch {} mode={:?} processed={} shed={} demoted={:?} tenants={:?}\n",
                    rep.epoch,
                    rep.mode,
                    rep.processed,
                    rep.shed.len(),
                    rep.demoted,
                    rep.tenants,
                ));
            }
        }
    }
    // Drain what's left so the lifetime accounting closes out too.
    for _ in 0..8 {
        let rep = svc.run_epoch().expect("drain epoch");
        assert!(svc.accounting().balanced(), "drain epoch {}", rep.epoch);
    }
    transcript.push_str(&format!("final {:?}", svc.accounting()));
    transcript
}

#[test]
fn seeded_churn_never_drops_records_silently() {
    let t = run_schedule(chaos(0xc0de));
    assert!(t.contains("epoch"), "schedule must have run epochs");
}

#[test]
fn same_seed_churn_replays_identically() {
    let seed = chaos(0xfeed);
    assert_eq!(
        run_schedule(seed),
        run_schedule(seed),
        "same-seed churn schedules must produce identical transcripts"
    );
}

/// Parses the standard generated query shape into the service's interner.
fn query(svc: &mut Service<Env>, id: u32, f: &str, th: i64) -> udf_lang::ast::Program {
    udf_lang::parse::parse_program(
        &format!(
            "program q{id} @{id} (v) {{
                 p := {f}(v);
                 if (p > {th}) {{ notify true; }} else {{ notify false; }}
             }}"
        ),
        svc.interner_mut(),
    )
    .expect("generated program parses")
}

fn pressured_config(seed: u64) -> ServeConfig {
    ServeConfig {
        queue_capacity: 96,
        epoch_batch_limit: 8,
        deadline_epochs: 1,
        retry: RetryPolicy {
            max_retries: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            jitter_seed: seed,
        },
        ..ServeConfig::default()
    }
}

/// Fills the queue to 100% pressure with 12 atomic batches of 8 records.
fn flood(svc: &mut Service<Env>) {
    for b in 0..12i64 {
        let recs: Vec<Rec> = (b * 8..(b + 1) * 8)
            .map(|v| (v as usize, vec![v % 512]))
            .collect();
        assert!(
            matches!(
                svc.submit(recs).expect("journal off: infallible"),
                Admission::Admitted { .. }
            ),
            "flood batch {b} must fit the queue"
        );
    }
}

/// Interleaving: a deregister issued under pressure must stay deferred
/// *through* the shed that clears the backlog (churn never lands mid-shed,
/// where plan surgery would race the epoch's accounting), then apply at
/// the first calm epoch — with every shed record explicitly accounted.
#[test]
fn deregister_defers_through_shed_then_applies() {
    silence_injected_panics();
    let (env, interner) = chaos_env(7);
    let mut svc = Service::new(env, pressured_config(7));
    *svc.interner_mut() = interner;
    let q0 = query(&mut svc, 0, "half", 5);
    let q1 = query(&mut svc, 1, "half", 9);
    assert!(matches!(
        svc.register(TenantId(0), &q0).expect("register q0"),
        ChurnOutcome::Applied(_) | ChurnOutcome::AppliedSolo
    ));
    assert!(matches!(
        svc.register(TenantId(1), &q1).expect("register q1"),
        ChurnOutcome::Applied(_) | ChurnOutcome::AppliedSolo
    ));
    flood(&mut svc);
    // Deregister at 100% pressure: deferred, not applied.
    assert!(matches!(
        svc.deregister(TenantId(0), udf_lang::ast::ProgId(0))
            .expect("deregister q0"),
        ChurnOutcome::Deferred
    ));
    // Epoch 1: pressured (degraded, sequential); nothing past its deadline
    // yet, so no shed; the deregister must still be pending.
    let rep = svc.run_epoch().expect("epoch 1");
    assert!(rep.shed.is_empty(), "no batch is past its deadline yet");
    assert!(svc.accounting().balanced());
    // Epoch 2: still over the shed watermark and the backlog is now past
    // its deadline — the whole remainder sheds. The deferred deregister
    // interleaves with the shed but must not land during it.
    let rep = svc.run_epoch().expect("epoch 2");
    assert!(!rep.shed.is_empty(), "aged backlog must shed");
    assert!(
        svc.tenant(TenantId(0))
            .expect("tenant 0")
            .query_ids()
            .contains(&udf_lang::ast::ProgId(0)),
        "deregister must not apply mid-shed"
    );
    let acc = svc.accounting();
    assert!(acc.balanced(), "shed records leaked: {acc:?}");
    assert_eq!(acc.shed, 88, "11 aged batches of 8 shed atomically");
    // Epoch 3: calm at last — the deferred deregister applies.
    svc.run_epoch().expect("epoch 3");
    assert!(
        !svc
            .tenant(TenantId(0))
            .expect("tenant 0")
            .query_ids()
            .contains(&udf_lang::ast::ProgId(0)),
        "deferred deregister must apply at the first calm epoch"
    );
    assert_eq!(svc.status().plan_queries, 1, "q1 alone remains in the plan");
    assert!(svc.accounting().balanced());
}

/// Interleaving: a registration deferred under pressure, followed by a
/// crash before any calm epoch could apply it, must survive recovery in
/// the pending-churn queue and still apply once the recovered service
/// reaches a calm epoch.
#[test]
fn deferred_register_survives_crash_before_apply() {
    silence_injected_panics();
    let seed = 11u64;
    let dir = std::env::temp_dir().join("udf-serve-churn-crash-before-apply");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create journal dir");
    let (env, interner) = chaos_env(seed);
    // Frames: reg q0 = 1, flood = 2..=13, reg q1 = 14; the first epoch's
    // commit frame (15) tears mid-append.
    let mut cfg = pressured_config(seed);
    cfg.sim_crash = Some(SimCrash {
        point: CrashPoint::MidAppend,
        after: 15,
        seed,
    });
    let mut svc = Service::open(env, interner, cfg, &dir).expect("open journaled");
    let q0 = query(&mut svc, 0, "half", 5);
    assert!(matches!(
        svc.register(TenantId(0), &q0).expect("register q0"),
        ChurnOutcome::Applied(_) | ChurnOutcome::AppliedSolo
    ));
    flood(&mut svc);
    let q1 = query(&mut svc, 1, "half", 9);
    assert!(
        matches!(
            svc.register(TenantId(1), &q1).expect("register q1"),
            ChurnOutcome::Deferred
        ),
        "registration at 100% pressure must defer"
    );
    match svc.run_epoch() {
        Err(ServeError::Journal(JournalError::SimulatedCrash(CrashPoint::MidAppend))) => {}
        other => panic!("expected the armed crash, got {other:?}"),
    }
    drop(svc);
    let (env2, interner2) = chaos_env(seed);
    let (mut svc, report) =
        Service::recover(env2, interner2, pressured_config(seed), &dir).expect("recover");
    assert!(report.truncated_tail, "the torn epoch frame is truncated");
    assert_eq!(report.frames_salvaged, 1);
    // The crashed epoch never became durable: the queue is still full and
    // the registration is still pending. Drain to a calm epoch.
    assert_eq!(svc.status().queued_records, 96);
    for _ in 0..3 {
        svc.run_epoch().expect("post-recovery epoch");
        assert!(svc.accounting().balanced());
    }
    assert!(
        svc.tenant(TenantId(1))
            .expect("tenant 1")
            .query_ids()
            .contains(&udf_lang::ast::ProgId(1)),
        "deferred registration must apply after recovery"
    );
    assert_eq!(
        svc.status().plan_queries,
        2,
        "both queries live in the shared plan after recovery"
    );
    drop(svc);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn distinct_seeds_exercise_distinct_schedules() {
    // A weak but useful canary that the seed actually reaches the
    // schedule: two far-apart seeds should not produce the same
    // transcript (they drive different op sequences).
    let a = run_schedule(chaos(0x1111_2222_3333_4444));
    let b = run_schedule(chaos(0x9999_8888_7777_6666));
    assert_ne!(a, b);
}
