//! Delta-consolidation equivalence: tree surgery on a live merged plan
//! must be observationally indistinguishable from re-running the full Ω
//! engine on the final query set (Theorem 1 transfers node by node), while
//! doing strictly less solver work for single-query churn.

use consolidate::{consolidate_many, DeltaPlan, Options};
use naiad_lite::engine::{Engine, ErrorPolicy, ExecMode, QuerySet};
use naiad_lite::fault::{silence_injected_panics, FaultKind, FaultPlan, FaultyEnv};
use naiad_lite::ScalarEnv;
use proptest::prelude::*;
use udf_lang::ast::{ProgId, Program};
use udf_lang::cost::CostModel;
use udf_lang::intern::Interner;
use udf_lang::{FnLibrary, Library};

fn library(interner: &mut Interner) -> FnLibrary {
    let inc = interner.intern("inc");
    let half = interner.intern("half");
    let mut lib = FnLibrary::new();
    lib.register(inc, "inc", 1, 15, |a| a[0] + 1);
    lib.register(half, "half", 1, 10, |a| a[0] / 2);
    lib
}

/// Threshold queries with nested predicates (`inc(v) > 3k`), so pairwise
/// consolidation has real entailments to prove and the solver-work
/// comparison below is not vacuous.
fn queries(interner: &mut Interner, n: u32) -> Vec<Program> {
    (0..n)
        .map(|k| {
            udf_lang::parse::parse_program(
                &format!(
                    "program q{k} @{k} (v) {{
                         p := inc(v);
                         h := half(p);
                         if (p > {} && h > 1) {{ notify true; }} else {{ notify false; }}
                     }}",
                    k * 3
                ),
                interner,
            )
            .expect("test program parses")
        })
        .collect()
}

/// The oracle: the merged program notifies exactly like each source, on a
/// value sweep covering every threshold.
fn assert_notify_equivalent(
    merged: &Program,
    sources: &[&Program],
    interner: &Interner,
    lib: &FnLibrary,
) {
    let interp = udf_lang::interp::Interp::new(CostModel::default(), lib);
    for v in -5i64..75 {
        let m = interp.run(merged, &[v], interner).expect("merged runs");
        for p in sources {
            let r = interp.run(p, &[v], interner).expect("source runs");
            assert_eq!(
                m.notifications.get(p.id),
                r.notifications.get(p.id),
                "record {v}: delta plan must notify like source {:?}",
                p.id
            );
        }
    }
}

/// The acceptance criterion: on a 21-query merged plan, a delta add (and a
/// delta remove) produces a notification-equivalent plan with strictly
/// fewer SMT checks than from-scratch `consolidate_many` on the same final
/// set.
#[test]
fn delta_add_and_remove_beat_scratch_on_solver_checks() {
    let mut interner = Interner::new();
    let lib = library(&mut interner);
    let cm = CostModel::default();
    let opts = Options::default();
    let programs = queries(&mut interner, 22);

    let mut plan = DeltaPlan::new();
    for p in &programs[..21] {
        plan.add(p, &mut interner, &cm, &lib, &opts)
            .expect("delta add");
    }
    assert_eq!(plan.len(), 21);
    let sources: Vec<&Program> = programs[..21].iter().collect();
    assert_notify_equivalent(
        plan.program().expect("non-empty plan"),
        &sources,
        &interner,
        &lib,
    );

    // Add query #22 by delta: only the O(log n) spine re-consolidates.
    let add = plan
        .add(&programs[21], &mut interner, &cm, &lib, &opts)
        .expect("delta add of the 22nd query");
    let scratch22 = consolidate_many(&programs, &mut interner, &cm, &lib, &opts, false)
        .expect("scratch consolidation");
    assert!(scratch22.stats.solver.checks > 0, "comparison must not be vacuous");
    assert!(
        add.stats.solver.checks < scratch22.stats.solver.checks,
        "delta add must do strictly fewer SMT checks: {} vs scratch {}",
        add.stats.solver.checks,
        scratch22.stats.solver.checks
    );
    assert!(
        (add.pairs_recomputed as usize) < 21,
        "delta add must not re-merge the whole tree"
    );
    let sources: Vec<&Program> = programs.iter().collect();
    assert_notify_equivalent(
        plan.program().expect("non-empty plan"),
        &sources,
        &interner,
        &lib,
    );

    // Remove a mid-tree query by delta.
    let remove = plan
        .remove(ProgId(5), &interner, &cm, &lib, &opts)
        .expect("delta remove");
    let remaining: Vec<Program> = programs
        .iter()
        .filter(|p| p.id != ProgId(5))
        .cloned()
        .collect();
    let scratch = consolidate_many(&remaining, &mut interner, &cm, &lib, &opts, false)
        .expect("scratch consolidation of the remaining set");
    assert!(
        remove.stats.solver.checks < scratch.stats.solver.checks,
        "delta remove must do strictly fewer SMT checks: {} vs scratch {}",
        remove.stats.solver.checks,
        scratch.stats.solver.checks
    );
    let sources: Vec<&Program> = remaining.iter().collect();
    assert_notify_equivalent(
        plan.program().expect("non-empty plan"),
        &sources,
        &interner,
        &lib,
    );
}

/// Compiles `programs` with `merged` attached and runs both modes over a
/// faulty environment, returning (counts, quarantined record indices).
fn run_with_faults(
    programs: &[Program],
    merged: &Program,
    interner: &mut Interner,
    fault_seed: u64,
) -> (Vec<u64>, Vec<usize>) {
    let lib = library(interner);
    let cm = CostModel::default();
    let qs = QuerySet::compile_many(programs, &cm, &|f| lib.cost(f))
        .expect("many compiles")
        .with_consolidated(merged, &cm, &|f| lib.cost(f), std::time::Duration::ZERO)
        .expect("merged compiles");
    let trigger = interner.intern("inc");
    let plan = FaultPlan::seeded_kinds(
        fault_seed,
        80,
        9,
        &[FaultKind::LibError, FaultKind::Panic, FaultKind::Transient(9)],
    );
    let env = FaultyEnv::new(ScalarEnv::new(1, lib), trigger, plan);
    let records = FaultyEnv::<ScalarEnv>::index_records((0..80).map(|v| vec![v]));
    let run = Engine::new(2)
        .with_error_policy(ErrorPolicy::Quarantine { max_errors: 1000 })
        .run(&env, &records, &qs, ExecMode::Consolidated, false)
        .expect("quarantine absorbs faults");
    (run.counts.clone(), run.quarantine.records())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        ..ProptestConfig::default()
    })]

    /// Any seeded register/deregister sequence yields a plan whose
    /// notifications — and, under fault injection, whose quarantine
    /// decisions — match from-scratch `consolidate_many` on the final set.
    #[test]
    fn seeded_churn_matches_scratch(
        seed in any::<u64>(),
        ops in prop::collection::vec((any::<bool>(), 0u32..10), 1..24)
    ) {
        silence_injected_panics();
        let mut interner = Interner::new();
        let lib = library(&mut interner);
        let cm = CostModel::default();
        let opts = Options::default();
        let pool = queries(&mut interner, 10);

        let mut plan = DeltaPlan::new();
        let mut live: Vec<Program> = Vec::new();
        for (register, k) in ops {
            let p = &pool[k as usize];
            if register && !plan.contains(p.id) {
                plan.add(p, &mut interner, &cm, &lib, &opts).expect("add");
                live.push(p.clone());
            } else if !register && plan.contains(p.id) {
                plan.remove(p.id, &interner, &cm, &lib, &opts).expect("remove");
                live.retain(|q| q.id != p.id);
            }
        }
        prop_assert_eq!(plan.len(), live.len());
        if live.is_empty() {
            prop_assert!(plan.program().is_none());
            return Ok(());
        }

        let merged = plan.program().expect("non-empty plan").clone();
        let sources: Vec<&Program> = live.iter().collect();
        assert_notify_equivalent(&merged, &sources, &interner, &lib);

        // Engine-level: same counts AND same quarantine decisions as the
        // from-scratch plan, under injected faults.
        let scratch = consolidate_many(&live, &mut interner, &cm, &lib, &opts, false)
            .expect("scratch consolidation");
        let (delta_counts, delta_quarantine) =
            run_with_faults(&live, &merged, &mut interner, seed);
        let (scratch_counts, scratch_quarantine) =
            run_with_faults(&live, &scratch.program, &mut interner, seed);
        prop_assert_eq!(delta_counts, scratch_counts);
        prop_assert_eq!(delta_quarantine, scratch_quarantine);
    }
}
