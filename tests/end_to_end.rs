//! Workspace-spanning integration tests: parse → consolidate → compile →
//! execute on the dataflow engine, asserting the paper's guarantees with the
//! *abstract* cost model (deterministic, unlike wall time).

use query_consolidation::dataflow::engine::{Engine, ExecMode, QuerySet};
use query_consolidation::dataflow::env::UdfEnv;
use query_consolidation::engine::{consolidate_many, EntailmentMode, IfPolicy, Options};
use query_consolidation::lang::{CostModel, Interner};
use query_consolidation::workloads::{flight, news, stock, twitter, weather};

struct EnvCost<'a, E: UdfEnv>(&'a E);

impl<'a, E: UdfEnv> udf_lang::cost::FnCost for EnvCost<'a, E> {
    fn fn_cost(&self, f: udf_lang::intern::Symbol) -> udf_lang::cost::Cost {
        self.0.fn_cost(f)
    }
}

/// Consolidates `programs`, runs both plans with cost tracking, and checks:
/// identical per-query outputs, zero missing notifications, and consolidated
/// abstract cost ≤ sequential abstract cost.
fn check_end_to_end<E: UdfEnv>(
    env: &E,
    records: &[E::Rec],
    programs: Vec<udf_lang::ast::Program>,
    interner: &mut Interner,
    opts: &Options,
    label: &str,
) -> (u64, u64) {
    let cm = CostModel::default();
    let merged = consolidate_many(&programs, interner, &cm, &EnvCost(env), opts, false)
        .expect("consolidation succeeds");
    let qs = QuerySet::compile_many(&programs, &cm, &|f| env.fn_cost(f))
        .expect("compile many")
        .with_consolidated(&merged.program, &cm, &|f| env.fn_cost(f), merged.elapsed)
        .expect("compile consolidated");
    let engine = Engine::new(2);
    let many = engine
        .run(env, records, &qs, ExecMode::Many, true)
        .expect("where_many");
    let cons = engine
        .run(env, records, &qs, ExecMode::Consolidated, true)
        .expect("where_consolidated");
    assert_eq!(many.counts, cons.counts, "{label}: outputs must agree");
    assert_eq!(cons.missing.iter().sum::<u64>(), 0, "{label}: every query notifies");
    let (mc, cc) = (many.cost.unwrap(), cons.cost.unwrap());
    assert!(
        cc <= mc,
        "{label}: consolidated abstract cost {cc} exceeds sequential {mc}"
    );
    (mc, cc)
}

#[test]
fn weather_families_end_to_end() {
    let mut interner = Interner::new();
    let env = weather::WeatherEnv::new(&mut interner);
    let records = weather::dataset_sized(25, 3);
    for fam in weather::families() {
        let programs = (fam.build)(8, 5, &mut interner);
        let (mc, cc) = check_end_to_end(
            &env,
            &records,
            programs,
            &mut interner,
            &Options::default(),
            fam.label,
        );
        // Every weather family shares computation; demand a real saving.
        assert!(
            cc * 10 <= mc * 9,
            "weather {}: expected ≥10% cost saving, got {cc} vs {mc}",
            fam.label
        );
    }
}

#[test]
fn flight_families_end_to_end() {
    let mut interner = Interner::new();
    let (env, records) = flight::dataset_sized(1, &mut interner, 3);
    for fam in flight::families() {
        let programs = (fam.build)(8, 5, &mut interner);
        check_end_to_end(
            &env,
            &records,
            programs,
            &mut interner,
            &Options::default(),
            fam.label,
        );
    }
}

#[test]
fn news_families_end_to_end() {
    let mut interner = Interner::new();
    let env = news::NewsEnv::new(&mut interner);
    let records = news::dataset_sized(120, 3);
    for fam in news::families() {
        let programs = (fam.build)(8, 5, &mut interner);
        let (mc, cc) = check_end_to_end(
            &env,
            &records,
            programs,
            &mut interner,
            &Options::default(),
            fam.label,
        );
        assert!(cc < mc, "news {} should save something", fam.label);
    }
}

#[test]
fn twitter_families_end_to_end() {
    let mut interner = Interner::new();
    let env = twitter::TwitterEnv::new(&mut interner);
    let records = twitter::dataset_sized(150, 3);
    for fam in twitter::families() {
        let programs = (fam.build)(8, 5, &mut interner);
        check_end_to_end(
            &env,
            &records,
            programs,
            &mut interner,
            &Options::default(),
            fam.label,
        );
    }
}

#[test]
fn stock_families_end_to_end() {
    let mut interner = Interner::new();
    let env = stock::StockEnv::new(&mut interner);
    let records = stock::dataset_sized(4, 600, 3);
    for (label, build) in stock::families_sized(600) {
        let programs = build(6, 5, &mut interner);
        let (mc, cc) = check_end_to_end(
            &env,
            &records,
            programs,
            &mut interner,
            &Options::default(),
            label,
        );
        assert!(cc < mc, "stock {label} should save something");
    }
}

#[test]
fn ablation_configs_remain_correct() {
    // Every configuration must stay *correct*; only performance may differ.
    let mut interner = Interner::new();
    let env = weather::WeatherEnv::new(&mut interner);
    let records = weather::dataset_sized(15, 4);
    let configs = [
        Options {
            if_policy: IfPolicy::AlwaysIf3,
            ..Options::default()
        },
        Options {
            if_policy: IfPolicy::AlwaysIf4,
            ..Options::default()
        },
        Options {
            if_policy: IfPolicy::AlwaysIf5,
            ..Options::default()
        },
        Options {
            loop_fusion: false,
            ..Options::default()
        },
        Options {
            mode: EntailmentMode::Syntactic,
            ..Options::default()
        },
    ];
    let fams = weather::families();
    for (k, opts) in configs.iter().enumerate() {
        let programs = (fams[4].build)(6, 9, &mut interner); // Mix
        check_end_to_end(
            &env,
            &records,
            programs,
            &mut interner,
            opts,
            &format!("config {k}"),
        );
    }
}

#[test]
fn consolidation_reduces_cost_more_with_more_overlap() {
    // Queries drawn from one family overlap more than a cross-family mix;
    // the cost saving must reflect that ordering (the paper's observation
    // that wins grow with similarity).
    let mut interner = Interner::new();
    let env = weather::WeatherEnv::new(&mut interner);
    let records = weather::dataset_sized(20, 8);
    let fams = weather::families();
    let q3_programs = (fams[2].build)(8, 7, &mut interner);
    let mix_programs = (fams[4].build)(8, 7, &mut interner);
    let (m3, c3) = check_end_to_end(
        &env,
        &records,
        q3_programs,
        &mut interner,
        &Options::default(),
        "q3",
    );
    let (mm, cm_) = check_end_to_end(
        &env,
        &records,
        mix_programs,
        &mut interner,
        &Options::default(),
        "mix",
    );
    let s3 = m3 as f64 / c3 as f64;
    let smix = mm as f64 / cm_ as f64;
    assert!(
        s3 >= smix * 0.9,
        "single-family saving ({s3:.2}x) should not trail the mix ({smix:.2}x) by much"
    );
}
