//! Fail-soft execution matrix: deterministic fault injection across every
//! failure mode the engine isolates, plus budgeted-consolidation
//! degradation.
//!
//! The invariants under test:
//!
//! 1. **Quarantine exactness** — a run quarantines exactly the faulted
//!    records, and every other record's notifications are untouched.
//! 2. **Mode parity on survivors** — `where_many` and `where_consolidated`
//!    quarantine the same records and agree on all surviving counts.
//! 3. **Graceful degradation** — budget-starved `consolidate_many` returns
//!    (never hangs, never errors) a compilable, sound program, reporting
//!    its tier; solver `Unknown`s (injected or budget-induced) only lose
//!    rewrites, never flip verdicts.

use consolidate::{consolidate_many, ConsolidationBudget, DegradationTier, Options};
use naiad_lite::engine::{Engine, EngineError, ErrorKind, ErrorPolicy, ExecMode, QuerySet};
use naiad_lite::fault::{silence_injected_panics, FaultKind, FaultPlan, FaultyEnv};
use naiad_lite::ScalarEnv;
use std::time::Duration;
use udf_lang::ast::Program;
use udf_lang::cost::CostModel;
use udf_lang::intern::Interner;
use udf_lang::library::Library;
use udf_lang::FnLibrary;

/// A library with one external function `probe(v) = v`, used as the fault
/// trigger, plus `half(v) = v / 2`.
fn library(interner: &mut Interner) -> FnLibrary {
    let probe = interner.intern("probe");
    let half = interner.intern("half");
    let mut lib = FnLibrary::new();
    lib.register(probe, "probe", 1, 20, |a| a[0]);
    lib.register(half, "half", 1, 10, |a| a[0] / 2);
    lib
}

/// `n` threshold queries over `probe(v)`; query `k` selects records with
/// `probe(v) > 10k`. A `FaultKind::FuelBurn` record makes `probe` return a
/// huge value, which the `while` loop then counts down — exhausting any
/// modest fuel budget.
fn probing_queries(interner: &mut Interner, n: u32) -> Vec<Program> {
    (0..n)
        .map(|k| {
            udf_lang::parse::parse_program(
                &format!(
                    "program q{k} @{k} (v) {{
                         p := probe(v);
                         spin := half(p);
                         while (spin > 50) {{ spin := spin - 1; }}
                         if (p > {}) {{ notify true; }} else {{ notify false; }}
                     }}",
                    k * 10
                ),
                interner,
            )
            .expect("test program parses")
        })
        .collect()
}

struct Harness {
    env: FaultyEnv<ScalarEnv>,
    records: Vec<(usize, Vec<i64>)>,
    queries: QuerySet,
    n_queries: usize,
}

/// Builds the standard harness: 200 scalar records `0..200`, `n_queries`
/// probing queries compiled in both Many and Consolidated form, and the
/// given fault plan on `probe`.
fn harness(n_queries: u32, plan: FaultPlan) -> Harness {
    let mut interner = Interner::new();
    let lib = library(&mut interner);
    let programs = probing_queries(&mut interner, n_queries);
    let cm = CostModel::default();
    let merged = consolidate_many(
        &programs,
        &mut interner,
        &cm,
        &lib,
        &Options::default(),
        false,
    )
    .expect("consolidation succeeds");
    let queries = QuerySet::compile_many(&programs, &cm, &|f| lib.cost(f))
        .expect("many compiles")
        .with_consolidated(&merged.program, &cm, &|f| lib.cost(f), merged.elapsed)
        .expect("merged compiles");
    let trigger = interner.intern("probe");
    let env = FaultyEnv::new(ScalarEnv::new(1, lib), trigger, plan).with_burn_value(1_000_000_000);
    let records = FaultyEnv::<ScalarEnv>::index_records((0..200).map(|v| vec![v]));
    Harness {
        env,
        records,
        queries,
        n_queries: n_queries as usize,
    }
}

/// Fuel low enough that a burn record exhausts it, high enough that every
/// healthy record (≤ ~100 spin iterations per query) never comes close.
const TEST_FUEL: u64 = 50_000;

/// Folds the `CHAOS_SEED` environment variable (see `ci/chaos.sh`) into a
/// base seed, so the whole matrix can be swept across seed families while
/// staying fully reproducible within one run.
fn chaos(seed: u64) -> u64 {
    match std::env::var("CHAOS_SEED") {
        Ok(s) => seed ^ s.trim().parse::<u64>().unwrap_or(0),
        Err(_) => seed,
    }
}

fn quarantine_engine() -> Engine {
    Engine::new(4)
        .with_error_policy(ErrorPolicy::Quarantine { max_errors: 64 })
        .with_fuel(TEST_FUEL)
}

#[test]
fn quarantine_hits_exactly_the_faulted_records_in_both_modes() {
    silence_injected_panics();
    let plan = FaultPlan::seeded(chaos(0xfa01), 200, 12);
    let expected = plan.records();
    let h = harness(4, plan.clone());
    let baseline = harness(4, FaultPlan::none());
    let engine = quarantine_engine();

    for mode in [ExecMode::Many, ExecMode::Consolidated] {
        let run = engine
            .run(&h.env, &h.records, &h.queries, mode, false)
            .expect("quarantine policy absorbs record faults");
        assert_eq!(
            run.quarantine.records(),
            expected,
            "{mode:?} must quarantine exactly the planned records"
        );
        assert_eq!(run.records, 200);
        assert!(run.quarantine.shards_lost == 0);

        // Every quarantined entry carries the right classification.
        for e in &run.quarantine.entries {
            let planned = plan.kind(e.record).expect("entry must be planned");
            let expected_kind = match planned {
                FaultKind::LibError | FaultKind::Transient(_) => ErrorKind::Lib,
                FaultKind::Panic => ErrorKind::Panic,
                FaultKind::FuelBurn => ErrorKind::OutOfFuel,
            };
            assert_eq!(e.kind, expected_kind, "record {}: {}", e.record, e.detail);
        }

        // Counts equal a clean run over the surviving records only.
        let clean = engine
            .run(&baseline.env, &baseline.records, &baseline.queries, mode, false)
            .expect("clean run");
        assert!(clean.quarantine.is_clean());
        for q in 0..h.n_queries {
            let faulted_selected = expected
                .iter()
                .filter(|&&r| r as i64 > (q as i64) * 10)
                .count() as u64;
            assert_eq!(
                run.counts[q],
                clean.counts[q] - faulted_selected,
                "query {q} in {mode:?}: survivors must count exactly"
            );
        }
    }
}

#[test]
fn many_and_consolidated_agree_on_survivors() {
    silence_injected_panics();
    let h = harness(5, FaultPlan::seeded(chaos(0xfa02), 200, 15));
    let engine = quarantine_engine();
    let many = engine
        .run(&h.env, &h.records, &h.queries, ExecMode::Many, true)
        .expect("many runs");
    let cons = engine
        .run(&h.env, &h.records, &h.queries, ExecMode::Consolidated, true)
        .expect("consolidated runs");
    assert_eq!(many.quarantine.records(), cons.quarantine.records());
    assert_eq!(many.counts, cons.counts, "notification parity on survivors");
    assert_eq!(many.missing, vec![0; h.n_queries]);
    assert_eq!(cons.missing, vec![0; h.n_queries]);
    assert!(
        cons.cost.expect("tracked") <= many.cost.expect("tracked"),
        "Theorem 1 cost bound must hold on the surviving records"
    );
}

#[test]
fn fail_fast_policy_reports_the_first_fault() {
    silence_injected_panics();
    let h = harness(3, FaultPlan::single(17, FaultKind::LibError));
    let engine = Engine::new(1).with_fuel(TEST_FUEL); // default FailFast
    let err = engine
        .run(&h.env, &h.records, &h.queries, ExecMode::Many, false)
        .expect_err("fail-fast must abort");
    match err {
        EngineError::Record { record, .. } => assert_eq!(record, 17),
        other => panic!("expected Record error, got {other:?}"),
    }

    let h = harness(3, FaultPlan::single(23, FaultKind::Panic));
    let err = engine
        .run(&h.env, &h.records, &h.queries, ExecMode::Many, false)
        .expect_err("fail-fast must abort on panic");
    match err {
        EngineError::RecordPanic { record, message } => {
            assert_eq!(record, 23);
            assert!(message.contains("injected fault"), "{message}");
        }
        other => panic!("expected RecordPanic, got {other:?}"),
    }
}

#[test]
fn max_errors_bounds_error_floods() {
    silence_injected_panics();
    let h = harness(2, FaultPlan::seeded(chaos(0xfa03), 200, 40));
    let engine = Engine::new(4)
        .with_error_policy(ErrorPolicy::Quarantine { max_errors: 5 })
        .with_fuel(TEST_FUEL);
    let err = engine
        .run(&h.env, &h.records, &h.queries, ExecMode::Many, false)
        .expect_err("40 faults exceed a limit of 5");
    match err {
        EngineError::TooManyErrors { limit, observed } => {
            assert_eq!(limit, 5);
            assert!(observed > 5);
        }
        other => panic!("expected TooManyErrors, got {other:?}"),
    }
}

#[test]
fn sample_payloads_are_capped_and_correct() {
    silence_injected_panics();
    let plan = FaultPlan::seeded(chaos(0xfa04), 200, 10);
    let h = harness(2, plan);
    let engine = Engine::new(1)
        .with_config(naiad_lite::EngineConfig {
            error_policy: ErrorPolicy::Quarantine { max_errors: 64 },
            fuel: Some(TEST_FUEL),
            max_payload_samples: 3,
            ..Default::default()
        });
    let run = engine
        .run(&h.env, &h.records, &h.queries, ExecMode::Many, false)
        .expect("runs");
    let with_sample: Vec<_> = run
        .quarantine
        .entries
        .iter()
        .filter(|e| e.sample.is_some())
        .collect();
    assert_eq!(with_sample.len(), 3, "payload samples capped at 3");
    for e in with_sample {
        assert_eq!(
            e.sample.as_deref(),
            Some(&[e.record as i64][..]),
            "sample must be the record's scalar args"
        );
    }
}

#[test]
fn quarantine_report_is_identical_across_worker_counts() {
    // Regression: payload samples used to be capped per *shard*, so which
    // entries carried samples depended on the worker count. The report —
    // entries, ordering, samples, and retry accounting — must now be a pure
    // function of the input.
    silence_injected_panics();
    let plan = FaultPlan::seeded(chaos(0xfa05), 200, 12);
    let mut baseline: Option<(naiad_lite::QuarantineReport, Vec<u64>)> = None;
    for workers in [1usize, 2, 8] {
        let h = harness(3, plan.clone());
        let run = Engine::new(workers)
            .with_error_policy(ErrorPolicy::Quarantine { max_errors: 64 })
            .with_fuel(TEST_FUEL)
            .run(&h.env, &h.records, &h.queries, ExecMode::Many, false)
            .expect("quarantine absorbs the faults");
        assert!(
            run.quarantine
                .entries
                .iter()
                .filter(|e| e.sample.is_some())
                .count()
                <= 8,
            "default payload-sample cap"
        );
        match &baseline {
            None => baseline = Some((run.quarantine, run.counts)),
            Some((q, c)) => {
                assert_eq!(
                    &run.quarantine, q,
                    "quarantine report must not depend on worker count ({workers} workers)"
                );
                assert_eq!(&run.counts, c, "{workers} workers");
            }
        }
    }
}

/// One quarantine round-trip per VmError variant plus the panic path,
/// table-driven.
#[test]
fn every_error_kind_round_trips_through_quarantine() {
    silence_injected_panics();
    let cases = [
        (FaultKind::LibError, ErrorKind::Lib),
        (FaultKind::Panic, ErrorKind::Panic),
        (FaultKind::FuelBurn, ErrorKind::OutOfFuel),
    ];
    for (fault, expected_kind) in cases {
        let h = harness(2, FaultPlan::single(31, fault));
        let run = quarantine_engine()
            .run(&h.env, &h.records, &h.queries, ExecMode::Many, false)
            .expect("quarantine absorbs the fault");
        assert_eq!(run.quarantine.records(), vec![31], "{fault:?}");
        let e = &run.quarantine.entries[0];
        assert_eq!(e.kind, expected_kind, "{fault:?}: {}", e.detail);
        assert_eq!(e.query, Some(h.queries.query_ids[0]), "first query faults");
    }

    // DuplicateNotify needs a malformed program rather than an env fault.
    let mut interner = Interner::new();
    let bad = udf_lang::parse::parse_program(
        "program dup @0 (v) { notify true; notify false; }",
        &mut interner,
    )
    .expect("parses");
    let cm = CostModel::default();
    let qs = QuerySet::compile_many(std::slice::from_ref(&bad), &cm, &|_| 10).expect("compiles");
    let env = ScalarEnv::new(1, FnLibrary::new());
    let records: Vec<Vec<i64>> = (0..10).map(|v| vec![v]).collect();
    let run = Engine::new(2)
        .with_error_policy(ErrorPolicy::Quarantine { max_errors: 64 })
        .run(&env, &records, &qs, ExecMode::Many, false)
        .expect("quarantine absorbs duplicate notifications");
    assert_eq!(run.quarantine.records_quarantined, 10, "every record dups");
    assert!(run
        .quarantine
        .entries
        .iter()
        .all(|e| e.kind == ErrorKind::DuplicateNotify));
    assert_eq!(run.counts, vec![0]);
}

#[test]
fn consolidated_mode_without_program_is_an_error_not_a_panic() {
    let mut interner = Interner::new();
    let programs = probing_queries(&mut interner, 2);
    let cm = CostModel::default();
    let lib = library(&mut interner);
    let qs = QuerySet::compile_many(&programs, &cm, &|f| lib.cost(f)).expect("compiles");
    let env = ScalarEnv::new(1, lib);
    let records: Vec<Vec<i64>> = vec![vec![1]];
    let err = Engine::new(1)
        .run(&env, &records, &qs, ExecMode::Consolidated, false)
        .expect_err("no consolidated program attached");
    assert_eq!(err, EngineError::MissingConsolidated);
}

// ---------------------------------------------------------------------------
// Budgeted consolidation: the degradation lattice.
// ---------------------------------------------------------------------------

/// Runs the interpreter over both the sources and a merged program,
/// asserting notification equivalence and the Theorem 1 cost bound — the
/// soundness oracle for degraded outputs.
fn assert_merged_sound(
    programs: &[Program],
    merged: &Program,
    interner: &Interner,
    lib: &FnLibrary,
) {
    let cm = CostModel::default();
    let interp = udf_lang::interp::Interp::new(cm, lib);
    for v in -5..60 {
        let m = interp.run(merged, &[v], interner).expect("merged runs");
        let mut seq_cost = 0;
        for p in programs {
            let r = interp.run(p, &[v], interner).expect("source runs");
            assert_eq!(
                m.notifications.get(p.id),
                r.notifications.get(p.id),
                "record {v}: merged must notify like source {:?}",
                p.id
            );
            seq_cost += r.cost;
        }
        assert!(
            m.cost <= seq_cost,
            "record {v}: merged cost {} exceeds sequential {}",
            m.cost,
            seq_cost
        );
    }
}

#[test]
fn starved_query_budget_degrades_to_sequential_but_sound() {
    let mut interner = Interner::new();
    let lib = library(&mut interner);
    let programs = probing_queries(&mut interner, 6);
    let cm = CostModel::default();
    let opts = Options {
        budget: ConsolidationBudget::default().with_max_solver_queries(0),
        ..Options::default()
    };
    let merged = consolidate_many(&programs, &mut interner, &cm, &lib, &opts, false)
        .expect("budget exhaustion must not error");
    assert_eq!(merged.stats.tier, DegradationTier::Sequential);
    assert_eq!(merged.stats.rules.if3 + merged.stats.rules.if4, 0);
    assert_merged_sound(&programs, &merged.program, &interner, &lib);
}

#[test]
fn partial_budget_consolidates_a_prefix_and_stays_sound() {
    let mut interner = Interner::new();
    let lib = library(&mut interner);
    let programs = probing_queries(&mut interner, 6);
    let cm = CostModel::default();
    // Generous enough for the first pairs, starved for the rest.
    let opts = Options {
        budget: ConsolidationBudget::default().with_max_solver_queries(40),
        ..Options::default()
    };
    let merged = consolidate_many(&programs, &mut interner, &cm, &lib, &opts, false)
        .expect("budget exhaustion must not error");
    assert!(
        merged.stats.tier >= DegradationTier::Partial,
        "40 queries cannot fully consolidate 6 programs: {:?}",
        merged.stats
    );
    assert_merged_sound(&programs, &merged.program, &interner, &lib);

    // An unlimited run of the same family reports Full.
    let mut interner2 = Interner::new();
    let lib2 = library(&mut interner2);
    let programs2 = probing_queries(&mut interner2, 6);
    let full = consolidate_many(
        &programs2,
        &mut interner2,
        &cm,
        &lib2,
        &Options::default(),
        false,
    )
    .expect("unlimited run");
    assert_eq!(full.stats.tier, DegradationTier::Full);
    assert!(full.stats.entailment_queries > 0);
}

#[test]
fn zero_deadline_returns_immediately_with_sequential_plan() {
    let mut interner = Interner::new();
    let lib = library(&mut interner);
    let programs = probing_queries(&mut interner, 8);
    let cm = CostModel::default();
    let opts = Options {
        budget: ConsolidationBudget::default().with_deadline(Duration::ZERO),
        ..Options::default()
    };
    let start = std::time::Instant::now();
    let merged = consolidate_many(&programs, &mut interner, &cm, &lib, &opts, true)
        .expect("deadline exhaustion must not error");
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "an expired deadline must not hang"
    );
    assert_eq!(merged.stats.tier, DegradationTier::Sequential);
    assert_eq!(merged.stats.pairs_degraded, 7, "all pairs concatenate");
    assert_merged_sound(&programs, &merged.program, &interner, &lib);

    // The degraded plan still compiles and runs on the engine.
    let qs = QuerySet::compile_many(&programs, &cm, &|f| lib.cost(f))
        .expect("many compiles")
        .with_consolidated(&merged.program, &cm, &|f| lib.cost(f), merged.elapsed)
        .expect("degraded plan compiles");
    let mut i2 = Interner::new();
    let lib2 = library(&mut i2);
    let env = ScalarEnv::new(1, lib2);
    let records: Vec<Vec<i64>> = (0..50).map(|v| vec![v]).collect();
    let engine = Engine::new(2);
    let many = engine
        .run(&env, &records, &qs, ExecMode::Many, true)
        .expect("many runs");
    let cons = engine
        .run(&env, &records, &qs, ExecMode::Consolidated, true)
        .expect("sequential plan runs");
    assert_eq!(many.counts, cons.counts);
    assert!(cons.cost.expect("tracked") <= many.cost.expect("tracked"));
}

#[test]
fn budgeted_pair_never_exceeds_query_ceiling_by_much() {
    // The ceiling is enforced at charge time, so the total charged is
    // exactly the ceiling; cached entailments answered afterwards are free
    // and sound.
    let mut interner = Interner::new();
    let lib = library(&mut interner);
    let programs = probing_queries(&mut interner, 4);
    let cm = CostModel::default();
    for ceiling in [0u64, 5, 25, 100] {
        let opts = Options {
            budget: ConsolidationBudget::default().with_max_solver_queries(ceiling),
            ..Options::default()
        };
        let merged = consolidate_many(&programs.clone(), &mut interner, &cm, &lib, &opts, false)
            .expect("never errors");
        assert_merged_sound(&programs, &merged.program, &interner, &lib);
    }
}

// ---------------------------------------------------------------------------
// Solver Unknowns (injected or budget-induced) never flip verdicts.
// ---------------------------------------------------------------------------

#[test]
fn injected_unknowns_only_lose_rewrites_never_soundness() {
    let mut interner = Interner::new();
    let lib = library(&mut interner);
    let cm = CostModel::default();
    // Force Unknown on a sweep of early check indices; whatever entailments
    // those checks backed are simply not proved, so the merged program may
    // share less — but must behave identically.
    for k in 0..12u64 {
        let programs = probing_queries(&mut interner, 3);
        let opts = Options {
            solver: udf_smt::Solver::new().with_unknown_at([k, k + 1, k + 2]),
            ..Options::default()
        };
        let merged = consolidate_many(&programs, &mut interner, &cm, &lib, &opts, false)
            .expect("unknown injection must not error");
        assert_merged_sound(&programs, &merged.program, &interner, &lib);
    }
}

#[test]
fn starved_theory_limits_never_flip_entailment_verdicts() {
    // The consolidation-layer extension of the solver's
    // `unknown_on_tiny_budgets_never_unsound` test: with starved theory
    // budgets every entailment may come back unproved, but the merged
    // program still satisfies the notification-equivalence oracle.
    let mut interner = Interner::new();
    let lib = library(&mut interner);
    let cm = CostModel::default();
    let mut starved = udf_smt::Solver::new();
    starved.theory_limits.lia_budget = 1;
    starved.max_final_checks = 2;
    let programs = probing_queries(&mut interner, 4);
    let opts = Options {
        solver: starved,
        ..Options::default()
    };
    let merged = consolidate_many(&programs, &mut interner, &cm, &lib, &opts, false)
        .expect("starved solver must not error");
    assert_merged_sound(&programs, &merged.program, &interner, &lib);
}
