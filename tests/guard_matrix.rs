//! Guarded-execution matrix: differential plan validation, self-healing
//! demotion, and transient-fault retry.
//!
//! The invariants under test:
//!
//! 1. **Corruption detection** — a consolidated plan whose bytecode was
//!    mutated behind the optimizer's back is caught by the shadow sampler,
//!    the job self-heals by demoting to sequential execution (output
//!    bit-identical to a pure-sequential run), and the poisoned plan is
//!    evicted from the plan cache so it cannot be re-served.
//! 2. **Retry drains transients** — `Transient(k)` faults recover with zero
//!    quarantines when `k ≤ max_retries`, and quarantine with exact retry
//!    accounting when `k > max_retries`.
//! 3. **LogOnly is read-only** — an auditing guard never changes job
//!    outputs, even over a corrupted plan.
//! 4. **Disabled guard is free** — `sample_rate = 0` performs no shadow
//!    runs and leaves reports identical to an unguarded engine's.

use naiad_lite::engine::{Engine, EngineConfig, EngineError, ErrorPolicy, ExecMode, QuerySet};
use naiad_lite::fault::{silence_injected_panics, FaultKind, FaultPlan, FaultyEnv};
use naiad_lite::{ErrorKind, GuardAction, GuardPolicy, RetryPolicy, ScalarEnv};
use plan_cache::PlanCache;
use std::sync::Arc;
use udf_lang::ast::Program;
use udf_lang::cost::CostModel;
use udf_lang::intern::Interner;
use udf_lang::library::Library;
use udf_lang::FnLibrary;
use udf_obs::names;

/// Same sizing as `fault_matrix`: burn records exhaust it, healthy records
/// never come close.
const TEST_FUEL: u64 = 50_000;

fn library(interner: &mut Interner) -> FnLibrary {
    let probe = interner.intern("probe");
    let half = interner.intern("half");
    let mut lib = FnLibrary::new();
    lib.register(probe, "probe", 1, 20, |a| a[0]);
    lib.register(half, "half", 1, 10, |a| a[0] / 2);
    lib
}

fn probing_queries(interner: &mut Interner, n: u32) -> Vec<Program> {
    (0..n)
        .map(|k| {
            udf_lang::parse::parse_program(
                &format!(
                    "program q{k} @{k} (v) {{
                         p := probe(v);
                         spin := half(p);
                         while (spin > 50) {{ spin := spin - 1; }}
                         if (p > {}) {{ notify true; }} else {{ notify false; }}
                     }}",
                    k * 10
                ),
                interner,
            )
            .expect("test program parses")
        })
        .collect()
}

/// Folds the `CHAOS_SEED` environment variable (see `ci/chaos.sh`) into a
/// base seed; identical to the helper in `fault_matrix`.
fn chaos(seed: u64) -> u64 {
    match std::env::var("CHAOS_SEED") {
        Ok(s) => seed ^ s.trim().parse::<u64>().unwrap_or(0),
        Err(_) => seed,
    }
}

struct Harness {
    env: FaultyEnv<ScalarEnv>,
    records: Vec<(usize, Vec<i64>)>,
    queries: QuerySet,
}

/// Builds the standard harness with consolidation routed through `cache`
/// (so the query set carries a plan key the guard can invalidate).
fn harness(cache: &PlanCache, plan: FaultPlan) -> Harness {
    let mut interner = Interner::new();
    let lib = library(&mut interner);
    let programs = probing_queries(&mut interner, 3);
    let cm = CostModel::default();
    let opts = consolidate::Options::default();
    let (queries, _merged, _outcome) = QuerySet::compile_consolidated_cached(
        &programs,
        &mut interner,
        &cm,
        &lib,
        &|f| lib.cost(f),
        &opts,
        false,
        cache,
        naiad_lite::engine::ExecBackend::PerRecord,
    )
    .expect("cached consolidation succeeds");
    let trigger = interner.intern("probe");
    let env =
        FaultyEnv::new(ScalarEnv::new(1, lib), trigger, plan).with_burn_value(1_000_000_000);
    let records = FaultyEnv::<ScalarEnv>::index_records((0..200).map(|v| vec![v]));
    Harness {
        env,
        records,
        queries,
    }
}

/// Flips the broadcast value of the first `Notify` instruction in the
/// consolidated bytecode — the minimal "plan corrupted in the cache / by a
/// miscompile" simulation: still a perfectly well-formed program, just one
/// that disagrees with the sequential semantics on some records.
fn corrupt_consolidated(queries: &mut QuerySet) {
    let compiled = queries
        .consolidated
        .as_mut()
        .expect("harness always attaches a consolidated program");
    let notify = compiled
        .ops
        .iter_mut()
        .find_map(|op| match op {
            naiad_lite::compile::Op::Notify { value, .. } => Some(value),
            _ => None,
        })
        .expect("a consolidated program notifies");
    *notify = !*notify;
}

fn guarded_engine(cache: &Arc<PlanCache>, guard: GuardPolicy) -> Engine {
    Engine::new(4).with_config(EngineConfig {
        error_policy: ErrorPolicy::Quarantine { max_errors: 64 },
        guard,
        fuel: Some(TEST_FUEL),
        plan_cache: Some(Arc::clone(cache)),
        recorder: udf_obs::RecorderCell::memory(),
        ..EngineConfig::default()
    })
}

#[test]
fn corrupted_plan_is_detected_demoted_and_evicted() {
    let cache = Arc::new(PlanCache::default());
    let mut h = harness(&cache, FaultPlan::none());
    assert_eq!(cache.len(), 1, "consolidation filled the cache");
    corrupt_consolidated(&mut h.queries);

    let engine = guarded_engine(&cache, GuardPolicy::audit_all());
    let guarded = engine
        .run(&h.env, &h.records, &h.queries, ExecMode::Consolidated, false)
        .expect("Demote self-heals instead of failing");
    let guard = guarded.guard.expect("guarded consolidated run reports");
    assert!(guard.demoted, "divergence must demote the job");
    assert!(guard.mismatches >= 1);
    let incident = guard.incident.expect("a demotion carries its incident");
    assert!(incident.plan_invalidated, "the cached plan must be evicted");
    assert!(!incident.examples.is_empty(), "incident names the records");

    // Self-healing: the demoted report is identical to a pure-sequential
    // run of the same job — no dropped records, no count drift.
    let sequential = Engine::new(4)
        .with_error_policy(ErrorPolicy::Quarantine { max_errors: 64 })
        .with_fuel(TEST_FUEL)
        .run(&h.env, &h.records, &h.queries, ExecMode::Many, false)
        .expect("sequential reference run");
    assert_eq!(guarded.counts, sequential.counts);
    assert_eq!(guarded.missing, sequential.missing);
    assert_eq!(guarded.quarantine, sequential.quarantine);

    // Eviction: the poisoned entry is gone, accounted as an invalidation.
    assert_eq!(cache.len(), 0, "poisoned plan must not be re-served");
    assert_eq!(cache.stats().invalidations, 1);

    // The same corruption under FailFast is a structured error instead.
    let failfast = guarded_engine(
        &cache,
        GuardPolicy {
            on_mismatch: GuardAction::FailFast,
            ..GuardPolicy::audit_all()
        },
    );
    match failfast.run(&h.env, &h.records, &h.queries, ExecMode::Consolidated, false) {
        Err(EngineError::GuardTripped { incident }) => {
            assert!(incident.mismatches >= 1);
            assert_eq!(incident.action, GuardAction::FailFast);
        }
        other => panic!("expected GuardTripped, got {other:?}"),
    }
}

#[test]
fn retry_drains_transient_faults_below_the_retry_budget() {
    silence_injected_panics();
    let depth = 2u32; // succeeds on the 3rd attempt
    let max_retries = 3u32;
    let mut plan = FaultPlan::none();
    for record in [7usize, 42, 113] {
        plan.insert(record, FaultKind::Transient(depth));
    }
    let cache = Arc::new(PlanCache::default());
    let h = harness(&cache, plan);
    let clean = harness(&cache, FaultPlan::none());

    let engine = Engine::new(4)
        .with_error_policy(ErrorPolicy::Quarantine { max_errors: 64 })
        .with_retry(RetryPolicy::immediate(max_retries))
        .with_fuel(TEST_FUEL)
        .with_recorder(udf_obs::RecorderCell::memory());
    for mode in [ExecMode::Many, ExecMode::Consolidated] {
        h.env.reset_transients();
        let run = engine
            .run(&h.env, &h.records, &h.queries, mode, false)
            .expect("transients drain within the budget");
        assert!(
            run.quarantine.is_clean(),
            "k ≤ max_retries must quarantine nothing ({mode:?})"
        );
        assert_eq!(run.quarantine.records_retried, 3, "{mode:?}");
        assert_eq!(run.quarantine.records_recovered, 3, "{mode:?}");
        assert_eq!(
            run.quarantine.retry_attempts,
            u64::from(depth) * 3,
            "each record needs exactly `depth` retries ({mode:?})"
        );
        let baseline = engine
            .run(&clean.env, &clean.records, &clean.queries, mode, false)
            .expect("clean reference run");
        assert_eq!(run.counts, baseline.counts, "{mode:?}");
    }
    let snapshot = engine
        .config()
        .recorder
        .snapshot()
        .expect("memory recorder snapshots");
    assert_eq!(
        snapshot.counter(names::ENGINE_RETRIES),
        u64::from(depth) * 3 * 2,
        "both modes recorded"
    );
}

#[test]
fn retry_budget_exhaustion_quarantines_with_exact_accounting() {
    silence_injected_panics();
    let depth = 5u32;
    let max_retries = 2u32; // depth > max_retries: the record cannot recover
    let faulted = [7usize, 42, 113];
    let mut plan = FaultPlan::none();
    for record in faulted {
        plan.insert(record, FaultKind::Transient(depth));
    }
    let cache = Arc::new(PlanCache::default());
    let h = harness(&cache, plan);

    let engine = Engine::new(4)
        .with_error_policy(ErrorPolicy::Quarantine { max_errors: 64 })
        .with_retry(RetryPolicy::immediate(max_retries))
        .with_fuel(TEST_FUEL);
    for mode in [ExecMode::Many, ExecMode::Consolidated] {
        h.env.reset_transients();
        let run = engine
            .run(&h.env, &h.records, &h.queries, mode, false)
            .expect("quarantine absorbs the exhausted records");
        assert_eq!(
            run.quarantine.records(),
            faulted.to_vec(),
            "exactly the transient records quarantine ({mode:?})"
        );
        assert_eq!(run.quarantine.records_retried, 3, "{mode:?}");
        assert_eq!(run.quarantine.records_recovered, 0, "{mode:?}");
        assert_eq!(
            run.quarantine.retry_attempts,
            u64::from(max_retries) * 3,
            "{mode:?}"
        );
        for entry in &run.quarantine.entries {
            assert_eq!(entry.retries, max_retries, "record {}", entry.record);
            assert_eq!(entry.kind, ErrorKind::Lib, "record {}", entry.record);
        }
    }
}

#[test]
fn log_only_guard_never_changes_outputs() {
    let cache = Arc::new(PlanCache::default());
    let mut h = harness(&cache, FaultPlan::none());
    corrupt_consolidated(&mut h.queries);

    // Reference: the corrupted plan run with no guard at all.
    let unguarded = Engine::new(4)
        .with_error_policy(ErrorPolicy::Quarantine { max_errors: 64 })
        .with_fuel(TEST_FUEL)
        .run(&h.env, &h.records, &h.queries, ExecMode::Consolidated, false)
        .expect("unguarded run");

    let engine = guarded_engine(
        &cache,
        GuardPolicy {
            on_mismatch: GuardAction::LogOnly,
            ..GuardPolicy::audit_all()
        },
    );
    let audited = engine
        .run(&h.env, &h.records, &h.queries, ExecMode::Consolidated, false)
        .expect("LogOnly never fails the job");
    let guard = audited.guard.expect("guard report present");
    assert!(!guard.demoted, "LogOnly must not demote");
    assert!(guard.mismatches >= 1, "the divergence is still observed");
    let incident = guard.incident.expect("threshold reached => incident");
    assert_eq!(incident.action, GuardAction::LogOnly);
    assert!(!incident.plan_invalidated, "LogOnly must not evict");
    assert_eq!(cache.len(), 1, "plan stays cached under LogOnly");

    // Identical consolidated outputs: the audit is purely observational.
    assert_eq!(audited.counts, unguarded.counts);
    assert_eq!(audited.missing, unguarded.missing);
    assert_eq!(audited.quarantine, unguarded.quarantine);
}

#[test]
fn disabled_guard_runs_zero_shadows_and_changes_nothing() {
    silence_injected_panics();
    let cache = Arc::new(PlanCache::default());
    let h = harness(&cache, FaultPlan::seeded(chaos(0xfa06), 200, 8));

    let plain = Engine::new(4)
        .with_error_policy(ErrorPolicy::Quarantine { max_errors: 64 })
        .with_fuel(TEST_FUEL)
        .run(&h.env, &h.records, &h.queries, ExecMode::Consolidated, false)
        .expect("plain run");

    let engine = guarded_engine(
        &cache,
        GuardPolicy {
            sample_rate: 0.0,
            ..GuardPolicy::default()
        },
    );
    let guarded = engine
        .run(&h.env, &h.records, &h.queries, ExecMode::Consolidated, false)
        .expect("sample_rate = 0 run");
    assert!(
        guarded.guard.is_none(),
        "an inactive guard must not even report"
    );
    assert_eq!(guarded.counts, plain.counts);
    assert_eq!(guarded.missing, plain.missing);
    assert_eq!(guarded.quarantine, plain.quarantine);

    let snapshot = engine
        .config()
        .recorder
        .snapshot()
        .expect("memory recorder snapshots");
    assert_eq!(snapshot.counter(names::GUARD_SHADOW_RUNS), 0);
    assert_eq!(snapshot.counter(names::GUARD_MISMATCHES), 0);
    assert_eq!(snapshot.counter(names::GUARD_DEMOTIONS), 0);
}
