//! The paper's worked examples (Sections 2 and 4) as executable tests
//! against the public API.

use query_consolidation::engine::{consolidate_pair, consolidate_pair_prerenamed, Options};
use query_consolidation::lang::{
    analysis::rename_locals, parse::parse_program, pretty, CostModel, FnLibrary, Interner,
    Interp,
};

/// Example 1: the consolidated flight filter retrieves and lowercases the
/// airline name exactly once and performs at most two comparisons.
#[test]
fn example1_consolidation_structure() {
    let mut interner = Interner::new();
    let to_lower = interner.intern("toLower");
    let mut lib = FnLibrary::new();
    lib.register(to_lower, "toLower", 1, 30, |a| a[0] & 0xff);
    let f1 = parse_program(
        "program f1 @1 (airline, price) {
             name := toLower(airline);
             if (name == 1) { notify true; }
             else { if (name == 2) { notify true; } else { notify false; } }
         }",
        &mut interner,
    )
    .unwrap();
    let f2 = parse_program(
        "program f2 @2 (airline, price) {
             if (price >= 200) { notify false; }
             else { if (toLower(airline) == 1) { notify true; } else { notify false; } }
         }",
        &mut interner,
    )
    .unwrap();
    let merged = consolidate_pair(
        &f1,
        &f2,
        &mut interner,
        &CostModel::default(),
        &lib,
        &Options::default(),
    )
    .unwrap();
    let printed = pretty::program(&merged.program, &interner);
    assert_eq!(
        printed.matches("toLower").count(),
        1,
        "the lookup must be shared:\n{printed}"
    );
    // Behaviour on the full truth table of interesting inputs.
    let interp = Interp::new(CostModel::default(), &lib);
    let r1 = rename_locals(&f1, &mut interner, "x$");
    let r2 = rename_locals(&f2, &mut interner, "y$");
    for airline in [1i64, 2, 3] {
        for price in [100i64, 300] {
            let a = interp.run(&r1, &[airline, price], &interner).unwrap();
            let b = interp.run(&r2, &[airline, price], &interner).unwrap();
            let m = interp
                .run(&merged.program, &[airline, price], &interner)
                .unwrap();
            assert_eq!(m.notifications.get(f1.id), a.notifications.get(f1.id));
            assert_eq!(m.notifications.get(f2.id), b.notifications.get(f2.id));
            assert!(m.cost <= a.cost + b.cost);
        }
    }
}

/// Example 2: min-temperature and max-temperature loops fuse into one loop
/// calling `getTempOfMonth` once per month.
#[test]
fn example2_weather_loops_fuse() {
    let mut interner = Interner::new();
    let get = interner.intern("getTempOfMonth");
    let mut lib = FnLibrary::new();
    // A fixed yearly profile: month m has temperature 3m − 20.
    lib.register(get, "getTempOfMonth", 1, 50, |a| 3 * a[0] - 20);
    let g1 = parse_program(
        "program g1 @1 (city) {
             mn := getTempOfMonth(1); i := 2;
             while (i <= 12) { t := getTempOfMonth(i); if (t < mn) { mn := t; } i := i + 1; }
             if (mn > 15) { notify true; } else { notify false; }
         }",
        &mut interner,
    )
    .unwrap();
    let g2 = parse_program(
        "program g2 @2 (city) {
             mx := getTempOfMonth(1); j := 2;
             while (j <= 12) { c := getTempOfMonth(j); if (c > mx) { mx := c; } j := j + 1; }
             if (mx < 10) { notify true; } else { notify false; }
         }",
        &mut interner,
    )
    .unwrap();
    let r1 = rename_locals(&g1, &mut interner, "a$");
    let r2 = rename_locals(&g2, &mut interner, "b$");
    let merged = consolidate_pair_prerenamed(
        &r1,
        &r2,
        &interner,
        &CostModel::default(),
        &lib,
        &Options::default(),
    )
    .unwrap();
    assert_eq!(merged.stats.rules.loop2, 1, "loops must fuse: {:?}", merged.stats);
    let printed = pretty::program(&merged.program, &interner);
    // One call in the prologue (month 1) and one in the fused body.
    assert_eq!(
        printed.matches("getTempOfMonth").count(),
        2,
        "per-month call must be shared:\n{printed}"
    );
    let interp = Interp::new(CostModel::default(), &lib);
    let a = interp.run(&r1, &[0], &interner).unwrap();
    let b = interp.run(&r2, &[0], &interner).unwrap();
    let m = interp.run(&merged.program, &[0], &interner).unwrap();
    assert_eq!(m.notifications.get(g1.id), a.notifications.get(g1.id));
    assert_eq!(m.notifications.get(g2.id), b.notifications.get(g2.id));
    assert!(
        m.cost * 3 <= (a.cost + b.cost) * 2,
        "fusion should save at least a third: {} vs {}",
        m.cost,
        a.cost + b.cost
    );
}

/// Example 5 / Figure 6: complementary tests are decided with a single
/// comparison.
#[test]
fn example5_complementary_tests() {
    let mut interner = Interner::new();
    let lib = FnLibrary::new();
    let p1 = parse_program(
        "program p1 @1 (x, alpha) { if (x > alpha) { notify true; } else { notify false; } }",
        &mut interner,
    )
    .unwrap();
    let p2 = parse_program(
        "program p2 @2 (x, alpha) { if (x <= alpha) { notify true; } else { notify false; } }",
        &mut interner,
    )
    .unwrap();
    let merged = consolidate_pair_prerenamed(
        &p1,
        &p2,
        &interner,
        &CostModel::default(),
        &lib,
        &Options::default(),
    )
    .unwrap();
    let interp = Interp::new(CostModel::default(), &lib);
    for (x, alpha) in [(1i64, 5i64), (5, 5), (9, 5)] {
        let m = interp.run(&merged.program, &[x, alpha], &interner).unwrap();
        assert_eq!(m.notifications.get(p1.id), Some(x > alpha));
        assert_eq!(m.notifications.get(p2.id), Some(x <= alpha));
        let a = interp.run(&p1, &[x, alpha], &interner).unwrap();
        let b = interp.run(&p2, &[x, alpha], &interner).unwrap();
        assert!(m.cost < a.cost + b.cost, "one test instead of two");
    }
}

/// Example 6: the arithmetic-offset loops fuse via Loop 2 with the invariant
/// `j = i − 1`, eliminating the second `f` call per iteration.
#[test]
fn example6_offset_loops_fuse() {
    let mut interner = Interner::new();
    let f = interner.intern("f");
    let mut lib = FnLibrary::new();
    lib.register(f, "f", 1, 60, |a| a[0] * a[0] + 1);
    let p1 = parse_program(
        "program p1 @1 (alpha) {
             i := alpha; x := 0;
             while (i > 0) { i := i - 1; t1 := f(i); x := x + t1; }
             if (x > 40) { notify true; } else { notify false; }
         }",
        &mut interner,
    )
    .unwrap();
    let p2 = parse_program(
        "program p2 @2 (alpha) {
             j := alpha - 1; y := alpha;
             while (j >= 0) { t2 := f(j); y := y + t2; j := j - 1; }
             if (y > 40) { notify true; } else { notify false; }
         }",
        &mut interner,
    )
    .unwrap();
    let r1 = rename_locals(&p1, &mut interner, "a$");
    let r2 = rename_locals(&p2, &mut interner, "b$");
    let merged = consolidate_pair_prerenamed(
        &r1,
        &r2,
        &interner,
        &CostModel::default(),
        &lib,
        &Options::default(),
    )
    .unwrap();
    assert_eq!(merged.stats.rules.loop2, 1);
    let printed = pretty::program(&merged.program, &interner);
    assert_eq!(
        printed.matches("f(").count(),
        1,
        "one f call per iteration:\n{printed}"
    );
    let interp = Interp::new(CostModel::default(), &lib);
    for alpha in [0i64, 1, 4, 9] {
        let a = interp.run(&r1, &[alpha], &interner).unwrap();
        let b = interp.run(&r2, &[alpha], &interner).unwrap();
        let m = interp.run(&merged.program, &[alpha], &interner).unwrap();
        assert_eq!(m.notifications.get(p1.id), a.notifications.get(p1.id));
        assert_eq!(m.notifications.get(p2.id), b.notifications.get(p2.id));
        assert!(m.cost <= a.cost + b.cost);
    }
}
