//! Crash-recovery matrix: every [`CrashPoint`] × seed sweep must recover
//! to a service that is *bit-identical* to an uncrashed reference run.
//!
//! The harness replays one seeded op schedule three ways:
//!
//! 1. **reference** — journaling off (`Service::new`), collecting every
//!    epoch's `output_digest` and a final-state summary;
//! 2. **journaled** — same schedule with a journal attached and no crash,
//!    proving journaling is observation-only;
//! 3. **crashed** — same schedule with a [`SimCrash`] armed. When it
//!    fires, the service is dropped on the floor, [`Service::recover`]
//!    rebuilds it from the checkpoint + journal tail, and the schedule
//!    continues from the exact op that was in flight.
//!
//! Every successful mutating op appends exactly one journal frame, so
//! after recovery `journal_seq()` tells the harness whether the in-flight
//! op became durable (frame present → the op landed, skip it) or was lost
//! (re-issue it) — the same decision a real client makes from an ack
//! timeout. The recovered run's epoch-digest chain, final accounting, and
//! per-tenant state must all equal the reference exactly.
//!
//! `ci/chaos.sh` sweeps this file across `CHAOS_SEED` values.

use naiad_lite::engine::RetryPolicy;
use naiad_lite::fault::{silence_injected_panics, FaultKind, FaultPlan, FaultyEnv};
use naiad_lite::{ScalarEnv, UdfEnv};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Duration;
use udf_lang::intern::Interner;
use udf_lang::FnLibrary;
use udf_serve::{CrashPoint, JournalError, ServeConfig, ServeError, Service, SimCrash, TenantId};

type Env = FaultyEnv<ScalarEnv>;
type Rec = <Env as UdfEnv>::Rec;

/// Folds the `CHAOS_SEED` environment variable (see `ci/chaos.sh`) into a
/// base seed, so the sweep covers seed families while staying fully
/// reproducible within one run.
fn chaos(seed: u64) -> u64 {
    match std::env::var("CHAOS_SEED") {
        Ok(s) => seed ^ s.trim().parse::<u64>().unwrap_or(0),
        Err(_) => seed,
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Builds the chaos environment plus the interner its function library was
/// interned against. Reference, journaled, crashed, and recovered runs each
/// build a fresh copy — `FaultPlan` keys faults on record identity, so a
/// rebuilt env replays the exact same fault schedule.
fn build_env(seed: u64) -> (Env, Interner) {
    let mut interner = Interner::new();
    let probe = interner.intern("probe");
    let half = interner.intern("half");
    let mut lib = FnLibrary::new();
    lib.register(probe, "probe", 1, 20, |a| a[0]);
    lib.register(half, "half", 1, 10, |a| a[0] / 2);
    let faults = FaultPlan::seeded_kinds(
        seed,
        4096,
        48,
        &[
            FaultKind::LibError,
            FaultKind::Transient(1),
            FaultKind::Panic,
        ],
    );
    (FaultyEnv::new(ScalarEnv::new(1, lib), probe, faults), interner)
}

fn config(seed: u64, sim: Option<SimCrash>) -> ServeConfig {
    ServeConfig {
        queue_capacity: 96,
        epoch_batch_limit: 32,
        deadline_epochs: 2,
        tenant_quarantine_budget: 4,
        // Small on purpose: a ~50-op schedule crosses several checkpoints,
        // so the sweep exercises compaction + tail replay, not just replay.
        journal_checkpoint_every: 6,
        sim_crash: sim,
        retry: RetryPolicy {
            max_retries: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            jitter_seed: seed,
        },
        ..ServeConfig::default()
    }
}

/// One step of the seeded schedule. The whole schedule is generated up
/// front from the seed alone — independent of execution — so the crashed
/// run can resume it mid-stream after recovery.
enum OpSpec {
    Submit(Vec<Rec>),
    Register { tenant: u32, id: u32, src: String },
    Deregister { tenant: u32, id: u32 },
    Epoch,
}

impl OpSpec {
    fn describe(&self) -> String {
        match self {
            OpSpec::Submit(recs) => format!("submit {}", recs.len()),
            OpSpec::Register { tenant, id, .. } => format!("register t{tenant} q{id}"),
            OpSpec::Deregister { tenant, id } => format!("deregister t{tenant} q{id}"),
            OpSpec::Epoch => "epoch".to_string(),
        }
    }
}

fn build_ops(seed: u64, steps: u32) -> Vec<OpSpec> {
    let mut rng = seed;
    let mut next_record: i64 = 0;
    let mut next_query: u32 = 0;
    let mut live: Vec<(u32, u32)> = Vec::new();
    let mut ops = Vec::new();
    for _ in 0..steps {
        match splitmix64(&mut rng) % 4 {
            0 => {
                let n = 1 + (splitmix64(&mut rng) % 24) as i64;
                let recs: Vec<Rec> = (next_record..next_record + n)
                    .map(|v| (v as usize, vec![v % 512]))
                    .collect();
                next_record += n;
                ops.push(OpSpec::Submit(recs));
            }
            1 => {
                let tenant = (splitmix64(&mut rng) % 3) as u32;
                let id = next_query;
                next_query += 1;
                let hostile = id % 3 == 2;
                let f = if hostile { "probe" } else { "half" };
                let th = (splitmix64(&mut rng) % 40) as i64;
                let src = format!(
                    "program q{id} @{id} (v) {{
                         p := {f}(v);
                         if (p > {th}) {{ notify true; }} else {{ notify false; }}
                     }}"
                );
                live.push((tenant, id));
                ops.push(OpSpec::Register { tenant, id, src });
            }
            2 => {
                if !live.is_empty() {
                    let i = (splitmix64(&mut rng) as usize) % live.len();
                    let (tenant, id) = live.remove(i);
                    ops.push(OpSpec::Deregister { tenant, id });
                }
            }
            _ => ops.push(OpSpec::Epoch),
        }
    }
    // Close the schedule with drain epochs so lifetime accounting settles.
    for _ in 0..6 {
        ops.push(OpSpec::Epoch);
    }
    ops
}

/// Applies one op; epochs return their `(epoch, output_digest)`.
fn apply_op(svc: &mut Service<Env>, op: &OpSpec) -> Result<Option<(u64, u64)>, ServeError> {
    match op {
        OpSpec::Submit(recs) => svc.submit(recs.clone()).map(|_| None),
        OpSpec::Register { tenant, src, .. } => {
            let q = udf_lang::parse::parse_program(src, svc.interner_mut())
                .expect("generated program parses");
            svc.register(TenantId(*tenant), &q).map(|_| None)
        }
        OpSpec::Deregister { tenant, id } => svc
            .deregister(TenantId(*tenant), udf_lang::ast::ProgId(*id))
            .map(|_| None),
        OpSpec::Epoch => svc
            .run_epoch()
            .map(|rep| Some((rep.epoch, rep.output_digest))),
    }
}

/// Everything the comparison cares about: the observable state of a run.
fn summary(svc: &Service<Env>) -> String {
    let acc = svc.accounting();
    let st = svc.status();
    let mut s = format!(
        "acc admitted={} rejected={} shed={} processed={} queued={}\n\
         epoch={} queued_records={} plan_queries={} tenants={} demoted={}\n",
        acc.admitted,
        acc.rejected,
        acc.shed,
        acc.processed,
        acc.queued,
        st.epoch,
        st.queued_records,
        st.plan_queries,
        st.tenants,
        st.demoted_tenants,
    );
    for t in 0..3u32 {
        if let Some(ts) = svc.tenant(TenantId(t)) {
            let mut ids: Vec<u32> = ts.query_ids().iter().map(|p| p.0).collect();
            ids.sort_unstable();
            s.push_str(&format!(
                "tenant {t} demoted={} quarantined={} queries={ids:?}\n",
                ts.demoted, ts.quarantined_records
            ));
        }
    }
    s
}

struct RunOut {
    /// `epoch -> output_digest` for every epoch whose digest was observable.
    digests: BTreeMap<u64, u64>,
    /// At most one epoch whose digest is durably committed but unobservable
    /// to the harness (crash after checkpoint rename folded the epoch frame
    /// into the checkpoint before anyone read its digest).
    hole: Option<u64>,
    summary: String,
}

fn insert_digest(digests: &mut BTreeMap<u64, u64>, epoch: u64, digest: u64, whence: &str) {
    if let Some(prev) = digests.insert(epoch, digest) {
        assert_eq!(
            prev, digest,
            "epoch {epoch}: digest seen live disagrees with {whence}"
        );
    }
}

fn run_reference(seed: u64, steps: u32) -> RunOut {
    let (env, interner) = build_env(seed);
    let mut svc = Service::new(env, config(seed, None));
    *svc.interner_mut() = interner;
    let mut digests = BTreeMap::new();
    for op in &build_ops(seed, steps) {
        if let Some((e, d)) = apply_op(&mut svc, op).expect("reference op") {
            insert_digest(&mut digests, e, d, "reference");
        }
        assert!(svc.accounting().balanced(), "reference accounting leaked");
    }
    RunOut {
        digests,
        hole: None,
        summary: summary(&svc),
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("udf-serve-recovery-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create journal dir");
    dir
}

/// Runs the schedule journaled with `sim` armed. Returns `None` when the
/// crash point never fired (e.g. `after` beyond the schedule), otherwise
/// the recovered-and-completed run's observables.
fn run_crashed(seed: u64, steps: u32, sim: SimCrash, tag: &str) -> Option<RunOut> {
    let dir = fresh_dir(tag);
    let (env, interner) = build_env(seed);
    let mut svc =
        Service::open(env, interner, config(seed, Some(sim)), &dir).expect("open journaled");
    let ops = build_ops(seed, steps);
    let mut digests: BTreeMap<u64, u64> = BTreeMap::new();
    let mut hole: Option<u64> = None;
    let mut crashed = false;
    let mut i = 0usize;
    while i < ops.len() {
        match apply_op(&mut svc, &ops[i]) {
            Ok(Some((e, d))) => {
                insert_digest(&mut digests, e, d, "live report");
                i += 1;
            }
            Ok(None) => i += 1,
            Err(ServeError::Journal(JournalError::SimulatedCrash(point))) => {
                assert!(!crashed, "the crash point must fire exactly once");
                crashed = true;
                // The process "died": the in-memory service is dropped with
                // whatever it was doing half-done on disk.
                drop(svc);
                let (env2, interner2) = build_env(seed);
                let (svc2, report) =
                    Service::recover(env2, interner2, config(seed, None), &dir)
                        .unwrap_or_else(|e| {
                            panic!("recover after {point} at op {i} ({}): {e}", ops[i].describe())
                        });
                assert_eq!(
                    report.frames_salvaged as usize,
                    report.incidents.len(),
                    "every salvaged frame must carry an incident"
                );
                assert!(
                    report.frames_salvaged <= 1,
                    "a single crash tears at most the one in-flight frame"
                );
                for (e, d) in &report.replayed_epoch_digests {
                    insert_digest(&mut digests, *e, *d, "journal replay");
                }
                svc = svc2;
                // Exactly one frame per successful op: the durable frame
                // count tells us whether the in-flight op landed.
                let durable = svc.journal_seq().expect("recovered service is journaled");
                if durable as usize == i {
                    // Lost: the frame never became durable. Re-issue the op,
                    // exactly as an un-acked client would.
                } else {
                    assert_eq!(
                        durable as usize,
                        i + 1,
                        "{point}: a crash may lose at most the one in-flight op"
                    );
                    if matches!(ops[i], OpSpec::Epoch) {
                        // The epoch committed durably but its report died
                        // with the crash; if its frame was also folded into
                        // the checkpoint (post-rename crash) the digest is
                        // unobservable — note the hole instead of guessing.
                        let e = svc.status().epoch;
                        if !digests.contains_key(&e) {
                            hole = Some(e);
                        }
                    }
                    i += 1;
                }
            }
            Err(e) => panic!("unexpected service error at op {i}: {e}"),
        }
    }
    let out = if crashed {
        Some(RunOut {
            digests,
            hole,
            summary: summary(&svc),
        })
    } else {
        None
    };
    drop(svc);
    let _ = std::fs::remove_dir_all(&dir);
    out
}

fn assert_matches_reference(reference: &RunOut, run: &RunOut, label: &str) {
    for (e, d) in &reference.digests {
        match run.digests.get(e) {
            Some(rd) => assert_eq!(
                rd, d,
                "{label}: epoch {e} output digest diverged from reference"
            ),
            None => assert_eq!(
                run.hole,
                Some(*e),
                "{label}: epoch {e} digest missing without a checkpoint hole"
            ),
        }
    }
    assert_eq!(
        run.digests.len() + usize::from(run.hole.is_some()),
        reference.digests.len(),
        "{label}: epoch counts diverged"
    );
    assert_eq!(
        run.summary, reference.summary,
        "{label}: final service state diverged from reference"
    );
}

/// Journaling with no crash must be pure observation: digests and final
/// state identical to the journal-off reference — and a recovery from the
/// resulting on-disk state must reproduce that state exactly.
#[test]
fn journaling_is_observation_only_and_clean_recovery_is_exact() {
    silence_injected_panics();
    let seed = chaos(0x0b5e_4ab1_e000);
    let steps = 48;
    let reference = run_reference(seed, steps);
    let dir = fresh_dir(&format!("clean-{seed:x}"));
    let (env, interner) = build_env(seed);
    let mut svc = Service::open(env, interner, config(seed, None), &dir).expect("open");
    let mut digests = BTreeMap::new();
    for op in &build_ops(seed, steps) {
        if let Some((e, d)) = apply_op(&mut svc, op).expect("journaled op") {
            insert_digest(&mut digests, e, d, "journaled run");
        }
    }
    let live_summary = summary(&svc);
    let journaled = RunOut {
        digests,
        hole: None,
        summary: live_summary.clone(),
    };
    assert_matches_reference(&reference, &journaled, "journaled");
    // "Power down" gracefully (no final checkpoint call on purpose — the
    // journal tail alone must carry the un-checkpointed suffix).
    drop(svc);
    let (env2, interner2) = build_env(seed);
    let (recovered, report) =
        Service::recover(env2, interner2, config(seed, None), &dir).expect("clean recover");
    assert!(!report.truncated_tail, "clean shutdown leaves no torn tail");
    assert_eq!(report.frames_salvaged, 0);
    assert!(report.incidents.is_empty());
    assert_eq!(
        summary(&recovered),
        live_summary,
        "clean recovery must reproduce the pre-shutdown state bit-for-bit"
    );
    drop(recovered);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The full matrix: every crash point × a spread of trigger offsets, per
/// seed. Append-indexed points fire on the Nth frame append; checkpoint
/// points fire on the Nth checkpoint.
#[test]
fn crash_matrix_recovers_bit_identically() {
    silence_injected_panics();
    let steps = 48;
    for base in [0xc4a5_4001u64, 0xc4a5_4002u64] {
        let seed = chaos(base);
        let reference = run_reference(seed, steps);
        let mut fired = 0u32;
        for point in [CrashPoint::MidAppend, CrashPoint::PostAppendPreFsync] {
            for after in [1u64, 3, 9, 18, 30, 44] {
                let sim = SimCrash {
                    point,
                    after,
                    seed: seed ^ after.wrapping_mul(0x9e37_79b9),
                };
                let tag = format!("{seed:x}-{point}-{after}");
                if let Some(run) = run_crashed(seed, steps, sim, &tag) {
                    fired += 1;
                    assert_matches_reference(&reference, &run, &tag);
                }
            }
        }
        for point in [
            CrashPoint::MidCheckpoint,
            CrashPoint::PostCheckpointFsyncPreRename,
            CrashPoint::PostRenamePreTruncate,
        ] {
            for after in [1u64, 2, 3] {
                let sim = SimCrash {
                    point,
                    after,
                    seed: seed ^ after.wrapping_mul(0x85eb_ca6b),
                };
                let tag = format!("{seed:x}-{point}-{after}");
                if let Some(run) = run_crashed(seed, steps, sim, &tag) {
                    fired += 1;
                    assert_matches_reference(&reference, &run, &tag);
                }
            }
        }
        assert!(
            fired >= 12,
            "seed {seed:#x}: expected most crash points to fire, got {fired}"
        );
    }
}
