//! Warm-start parity: serving a consolidated plan from the cache must be
//! observationally identical to consolidating from scratch.
//!
//! The invariants under test:
//!
//! 1. **Plan identity** — the cached program pretty-prints identically to a
//!    freshly consolidated one, even though it crossed the cache as an
//!    interner-independent portable program (simulated here by rebuilding
//!    the whole pipeline against a brand-new interner).
//! 2. **Zero solver work on a hit** — the second submission of the same
//!    query set performs no SMT `check` calls at all.
//! 3. **Execution parity on survivors** — under fault injection, the warm
//!    `where_consolidated` run selects the same records and quarantines the
//!    same records as the cold run (and as `where_many`).

use naiad_lite::engine::{Engine, ErrorPolicy, ExecMode, QuerySet};
use naiad_lite::fault::{silence_injected_panics, FaultPlan, FaultyEnv};
use naiad_lite::ScalarEnv;
use plan_cache::{PlanCache, PlanOutcome};
use udf_lang::ast::Program;
use udf_lang::cost::CostModel;
use udf_lang::intern::Interner;
use udf_lang::library::Library;
use udf_lang::FnLibrary;

/// Fuel low enough that an injected burn record exhausts it, high enough
/// that healthy records never come close (same sizing as `fault_matrix`).
const TEST_FUEL: u64 = 50_000;

fn library(interner: &mut Interner) -> FnLibrary {
    let probe = interner.intern("probe");
    let half = interner.intern("half");
    let mut lib = FnLibrary::new();
    lib.register(probe, "probe", 1, 20, |a| a[0]);
    lib.register(half, "half", 1, 10, |a| a[0] / 2);
    lib
}

fn probing_queries(interner: &mut Interner, n: u32) -> Vec<Program> {
    (0..n)
        .map(|k| {
            udf_lang::parse::parse_program(
                &format!(
                    "program q{k} @{k} (v) {{
                         p := probe(v);
                         spin := half(p);
                         while (spin > 50) {{ spin := spin - 1; }}
                         if (p > {}) {{ notify true; }} else {{ notify false; }}
                     }}",
                    k * 10
                ),
                interner,
            )
            .expect("test program parses")
        })
        .collect()
}

struct Run {
    env: FaultyEnv<ScalarEnv>,
    records: Vec<(usize, Vec<i64>)>,
    queries: QuerySet,
    merged_text: String,
    outcome: PlanOutcome,
    solver_checks: u64,
}

/// One full "job submission": fresh interner (as a new process would have),
/// queries rebuilt from source, consolidation routed through `cache`.
fn submit(cache: &PlanCache, plan: FaultPlan) -> Run {
    let mut interner = Interner::new();
    let lib = library(&mut interner);
    let programs = probing_queries(&mut interner, 4);
    let cm = CostModel::default();
    let opts = consolidate::Options::default();
    let (queries, merged, outcome) = QuerySet::compile_consolidated_cached(
        &programs,
        &mut interner,
        &cm,
        &lib,
        &|f| lib.cost(f),
        &opts,
        false,
        cache,
        naiad_lite::engine::ExecBackend::PerRecord,
    )
    .expect("cached consolidation succeeds");
    let merged_text = udf_lang::pretty::program(&merged.program, &interner);
    let trigger = interner.intern("probe");
    let env =
        FaultyEnv::new(ScalarEnv::new(1, lib), trigger, plan).with_burn_value(1_000_000_000);
    let records = FaultyEnv::<ScalarEnv>::index_records((0..200).map(|v| vec![v]));
    Run {
        env,
        records,
        queries,
        merged_text,
        outcome,
        solver_checks: merged.stats.solver.checks,
    }
}

fn quarantine_engine() -> Engine {
    Engine::new(4)
        .with_error_policy(ErrorPolicy::Quarantine { max_errors: 64 })
        .with_fuel(TEST_FUEL)
}

#[test]
fn warm_cache_run_is_indistinguishable_from_cold() {
    silence_injected_panics();
    let cache = PlanCache::default();
    let plan = FaultPlan::seeded(0xca9e, 200, 12);

    let cold = submit(&cache, plan.clone());
    assert_eq!(cold.outcome, PlanOutcome::Miss, "first submission consolidates");
    assert!(cold.solver_checks > 0, "cold consolidation does solver work");

    let warm = submit(&cache, plan);
    assert_eq!(warm.outcome, PlanOutcome::Hit, "second submission is served");
    assert_eq!(
        warm.solver_checks, 0,
        "a cache hit must perform zero SMT checks"
    );
    assert_eq!(
        cold.merged_text, warm.merged_text,
        "the cached plan must pretty-print identically to the fresh one"
    );

    // Execution parity on the fault-matrix survivors: cold consolidated,
    // warm consolidated, and warm many must agree on counts and quarantine.
    let engine = quarantine_engine();
    let cold_cons = engine
        .run(&cold.env, &cold.records, &cold.queries, ExecMode::Consolidated, false)
        .expect("cold consolidated run");
    let warm_cons = engine
        .run(&warm.env, &warm.records, &warm.queries, ExecMode::Consolidated, false)
        .expect("warm consolidated run");
    let warm_many = engine
        .run(&warm.env, &warm.records, &warm.queries, ExecMode::Many, false)
        .expect("warm many run");

    assert_eq!(cold_cons.counts, warm_cons.counts);
    assert_eq!(
        cold_cons.quarantine.records(),
        warm_cons.quarantine.records(),
        "warm run must quarantine exactly the records the cold run did"
    );
    assert_eq!(warm_many.counts, warm_cons.counts);
    assert_eq!(warm_many.quarantine.records(), warm_cons.quarantine.records());

    let stats = cache.stats();
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.inserts, 1);
}

#[test]
fn healthy_records_select_identically_through_the_cache() {
    let cache = PlanCache::default();
    let cold = submit(&cache, FaultPlan::none());
    let warm = submit(&cache, FaultPlan::none());
    assert_eq!(warm.outcome, PlanOutcome::Hit);

    let engine = Engine::new(2).with_fuel(TEST_FUEL);
    let a = engine
        .run(&cold.env, &cold.records, &cold.queries, ExecMode::Consolidated, false)
        .expect("cold run");
    let b = engine
        .run(&warm.env, &warm.records, &warm.queries, ExecMode::Consolidated, false)
        .expect("warm run");
    assert_eq!(a.counts, b.counts);
    assert_eq!(a.quarantine.records_quarantined, 0);
    assert_eq!(b.quarantine.records_quarantined, 0);
}
