//! A dependency-free, offline drop-in for the subset of `criterion` this
//! workspace's benches use: [`Criterion::bench_function`], benchmark groups
//! with [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is a simple calibrated wall-clock loop (warm-up, then enough
//! iterations to pass a minimum measurement window) reporting mean
//! time-per-iteration. No statistics, plots, or saved baselines — the goal
//! is that `cargo bench` runs offline and prints usable numbers.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier (re-exported name; stable `hint` under the hood).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Creates an id from a function name and a parameter.
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{param}"))
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(param: impl fmt::Display) -> BenchmarkId {
        BenchmarkId(param.to_string())
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    /// Mean per-iteration time of the measured run.
    measured: Option<Duration>,
    sample_size: u64,
}

impl Bencher {
    /// Measures `f` and records mean per-iteration time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up: run until ~50ms or 3 iterations, whichever is later.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_iters < 3 || warm_start.elapsed() < Duration::from_millis(50) {
            black_box(f());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        // Measure: aim for ~200ms total, capped by sample_size-scaled floor.
        let target = 0.2f64;
        let iters = ((target / per_iter.max(1e-9)) as u64)
            .clamp(1, 1_000_000)
            .max(self.sample_size.min(10));
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.measured = Some(start.elapsed() / u32::try_from(iters).unwrap_or(u32::MAX));
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: u64,
}

fn report(name: &str, measured: Option<Duration>) {
    match measured {
        Some(d) => println!("{name:<50} {:>14.3?}/iter", d),
        None => println!("{name:<50} (no measurement)"),
    }
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            measured: None,
            sample_size: self.sample_size.max(10),
        };
        f(&mut b);
        report(name, b.measured);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the target sample size (accepted for compatibility).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.parent.sample_size = n as u64;
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            measured: None,
            sample_size: self.parent.sample_size.max(10),
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.0), b.measured);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
