//! A dependency-free, offline drop-in for the subset of `proptest` this
//! workspace uses: [`Strategy`] with `prop_map` / `prop_recursive` /
//! `boxed`, [`BoxedStrategy`], integer-range and tuple strategies,
//! `prop::collection::vec`, [`Just`], [`any`], the [`proptest!`],
//! [`prop_oneof!`], and `prop_assert*` macros, and [`ProptestConfig`].
//!
//! Differences from upstream, deliberate for an offline test container:
//!
//! * **No shrinking.** A failing case reports the generated inputs via the
//!   panic message (cases are `Debug`-printed by the caller's assertions);
//!   it is not minimized.
//! * **Deterministic seeding.** Each test function derives its RNG seed from
//!   its own name, so failures reproduce run-to-run. Set `PROPTEST_SEED` to
//!   an integer to perturb the whole suite.
//!
//! Soundness of the *properties themselves* is unchanged: every case that
//! runs asserts exactly what the upstream version asserted.

#![forbid(unsafe_code)]

use std::fmt;
use std::rc::Rc;

/// Deterministic word generator used by strategies (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator.
    pub fn seed_from_u64(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Derives a seed from a test name plus the optional `PROPTEST_SEED`
    /// environment override.
    pub fn for_test(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(extra) = s.parse::<u64>() {
                h ^= extra.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            }
        }
        TestRng::seed_from_u64(h)
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }
}

/// Failure of one test case (returned by `prop_assert*`).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(msg: impl fmt::Display) -> TestCaseError {
        TestCaseError(msg.to_string())
    }

    /// Alias kept for upstream compatibility.
    pub fn reject(msg: impl fmt::Display) -> TestCaseError {
        TestCaseError(msg.to_string())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Body result of a `proptest!` case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `self` is the leaf; `f` wraps an
    /// inner strategy into the next level, applied `depth` times.
    /// (`_desired_size` and `_expected_branch` are accepted for upstream
    /// signature compatibility and ignored.)
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut cur = self.boxed();
        for _ in 0..depth {
            cur = f(cur).boxed();
        }
        cur
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }

    fn boxed(self) -> BoxedStrategy<T>
    where
        T: 'static,
    {
        self
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                let off = (rng.next_u64() as u128 % span as u128) as i128;
                ((self.start as i128) + off) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                let span = (hi as i128) - (lo as i128) + 1;
                let off = (rng.next_u64() as u128 % span as u128) as i128;
                ((lo as i128) + off) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Weighted union of strategies (backs [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total: u64 = arms.iter().map(|&(w, _)| u64::from(w)).sum();
        assert!(total > 0, "prop_oneof: zero total weight");
        Union { arms, total }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < u64::from(*w) {
                return s.generate(rng);
            }
            pick -= u64::from(*w);
        }
        unreachable!("weights sum checked in Union::new")
    }
}

/// Types with a canonical [`any`] strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length bounds accepted by [`vec`].
    pub trait SizeBounds {
        /// `(min, max_exclusive)` bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeBounds for core::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl SizeBounds for core::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    impl SizeBounds for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    /// Strategy for vectors whose length lies in `bounds`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// Generates `Vec`s of `element` values with length in `bounds`.
    pub fn vec<S: Strategy>(element: S, bounds: impl SizeBounds) -> VecStrategy<S> {
        let (min, max) = bounds.bounds();
        assert!(min < max, "empty vec length range");
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.max - self.min) as u64;
            let len = self.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything tests import (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
        TestCaseResult, TestRng,
    };
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Chooses among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}: {}", a, b, format!($($fmt)*));
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}: {}", a, b, format!($($fmt)*));
    }};
}

/// Rejects the current case (treated as a skipped case, not a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Declares property tests.
///
/// Supports the two forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0u8..4, v in prop::collection::vec(any::<bool>(), 0..3)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)*
                #[allow(unreachable_code)]
                let outcome: $crate::TestCaseResult = (|| {
                    { $body };
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!("proptest case {}/{} failed: {}", case + 1, config.cases, e);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Tree {
        Leaf(i64),
        Node(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> usize {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    fn tree() -> impl Strategy<Value = Tree> {
        let leaf = (-10i64..11).prop_map(Tree::Leaf);
        leaf.prop_recursive(3, 8, 2, |inner| {
            prop_oneof![
                2 => (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b))),
                1 => (-10i64..11).prop_map(Tree::Leaf),
            ]
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn recursion_depth_is_bounded(t in tree()) {
            prop_assert!(depth(&t) <= 3, "depth {} exceeds bound", depth(&t));
        }

        #[test]
        fn vec_lengths_respect_bounds(v in prop::collection::vec(any::<bool>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn tuples_and_just(x in Just(7i64), (a, b) in (0u8..4, any::<bool>())) {
            prop_assert_eq!(x, 7);
            prop_assert!(a < 4);
            let _ = b;
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
