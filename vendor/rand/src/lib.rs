//! A dependency-free, offline drop-in for the subset of `rand` 0.8 this
//! workspace uses: [`Rng`], [`SeedableRng`], [`rngs::SmallRng`], and
//! [`distributions::Distribution`].
//!
//! The build container has no crates.io access, so the workspace vendors the
//! few external APIs it needs. Generators are deterministic (xoshiro256**
//! seeded via splitmix64, the same construction the real `SmallRng` uses on
//! 64-bit targets); streams are *not* bit-compatible with upstream `rand`,
//! which is fine for this repo — datasets only need to be reproducible with
//! respect to themselves.

#![forbid(unsafe_code)]

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;
}

/// User-facing generator methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of a supported primitive type uniformly.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(&mut || self.next_u64())
    }

    /// Samples uniformly from an integer range (`a..b` or `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(&mut || self.next_u64())
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64_from_u64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn f64_from_u64(x: u64) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the word source.
    fn sample_standard(words: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard(words: &mut dyn FnMut() -> u64) -> Self {
                words() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard(words: &mut dyn FnMut() -> u64) -> Self {
        words() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard(words: &mut dyn FnMut() -> u64) -> Self {
        f64_from_u64(words())
    }
}

impl Standard for f32 {
    fn sample_standard(words: &mut dyn FnMut() -> u64) -> Self {
        (f64_from_u64(words())) as f32
    }
}

/// Types uniformly samplable over a range (mirrors `rand`'s blanket-impl
/// structure so integer-literal type inference flows through arithmetic).
pub trait SampleUniform: Sized {
    /// Uniform draw in `[lo, hi)`.
    fn sample_in(lo: Self, hi_excl: Self, words: &mut dyn FnMut() -> u64) -> Self;
    /// Uniform draw in `[lo, hi]`.
    fn sample_in_inclusive(lo: Self, hi: Self, words: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in(lo: Self, hi_excl: Self, words: &mut dyn FnMut() -> u64) -> Self {
                assert!(lo < hi_excl, "gen_range: empty range");
                let span = (hi_excl as i128) - (lo as i128);
                let off = (words() as u128 % span as u128) as i128;
                ((lo as i128) + off) as $t
            }
            fn sample_in_inclusive(lo: Self, hi: Self, words: &mut dyn FnMut() -> u64) -> Self {
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as i128) - (lo as i128) + 1;
                let off = (words() as u128 % span as u128) as i128;
                ((lo as i128) + off) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_in(lo: Self, hi_excl: Self, words: &mut dyn FnMut() -> u64) -> Self {
        assert!(lo < hi_excl, "gen_range: empty range");
        lo + f64_from_u64(words()) * (hi_excl - lo)
    }
    fn sample_in_inclusive(lo: Self, hi: Self, words: &mut dyn FnMut() -> u64) -> Self {
        assert!(lo <= hi, "gen_range: empty inclusive range");
        lo + f64_from_u64(words()) * (hi - lo)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value inside the range.
    fn sample_from(self, words: &mut dyn FnMut() -> u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from(self, words: &mut dyn FnMut() -> u64) -> T {
        T::sample_in(self.start, self.end, words)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from(self, words: &mut dyn FnMut() -> u64) -> T {
        T::sample_in_inclusive(*self.start(), *self.end(), words)
    }
}

/// Named generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded via splitmix64 — deterministic and fast.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    /// Alias: the stub does not distinguish the std generator.
    pub type StdRng = SmallRng;
}

/// Distributions (subset of `rand::distributions`).
pub mod distributions {
    use super::Rng;

    /// A type that samples values of `T` from a generator.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_separated() {
        let a: u64 = SmallRng::seed_from_u64(7).gen();
        let b: u64 = SmallRng::seed_from_u64(7).gen();
        let c: u64 = SmallRng::seed_from_u64(8).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(-20i64..21);
            assert!((-20..21).contains(&v));
            let w = r.gen_range(1u32..=12);
            assert!((1..=12).contains(&w));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| r.gen_bool(0.35)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.35).abs() < 0.02, "observed {frac}");
    }
}
